//! The service: one writer thread, any number of snapshot readers.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use stl_core::{EnginePool, Maintenance, Stl};
use stl_graph::{CsrGraph, Dist, EdgeUpdate, VertexId, INF};

use crate::snapshot::Snapshot;
use crate::stats::{ServerStats, StatsCells};

/// How many rejection reasons the server retains for [`StlServer::wait_for`].
///
/// Rejections are an error path: retaining every reason forever would let a
/// misbehaving client grow server memory without bound (exactly the class of
/// remote-triggerable failure the fallible writer exists to prevent), so only
/// the most recent window is kept. Clients that wait promptly — everything in
/// this crate does — always see their reason.
const REJECTION_WINDOW: usize = 1024;

/// What happened to a submitted batch, per ticket (see [`StlServer::wait_for`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The batch validated, was applied, and its epoch is published: every
    /// snapshot taken after `wait_for` returned reflects it.
    Applied,
    /// The batch failed validation and was dropped **before any mutation** —
    /// graph, labels, and generation are exactly as if it was never
    /// submitted, and the writer keeps serving later batches. The payload is
    /// a human-readable reason naming the first offending update.
    Rejected(String),
}

impl BatchOutcome {
    /// Whether the batch was applied and published.
    pub fn is_applied(&self) -> bool {
        matches!(self, BatchOutcome::Applied)
    }
}

/// Validate a batch against the (immutable) topology of `g` without applying
/// anything: every update must target an existing edge between distinct
/// in-range vertices with a finite weight. Returns the first violation as a
/// human-readable reason.
///
/// This is the gate that makes the serving path total: `Stl::apply_batch`
/// panics on a missing edge (its documented in-process contract), so the
/// writer — and the transport's [`crate::AdaptiveBatcher`] in front of it —
/// run this check first and turn bad input into
/// [`BatchOutcome::Rejected`] instead of a dead writer thread. Validation is
/// purely topological (road-network structure is fixed, §8), so a batch that
/// passes here never panics in the apply path regardless of concurrent
/// weight changes.
pub fn validate_batch(g: &CsrGraph, batch: &[EdgeUpdate]) -> Result<(), String> {
    let n = g.num_vertices() as u64;
    for (i, u) in batch.iter().enumerate() {
        if u64::from(u.a) >= n || u64::from(u.b) >= n {
            return Err(format!(
                "update {i}: vertex out of range (({}, {}) in a {n}-vertex graph)",
                u.a, u.b
            ));
        }
        if u.a == u.b {
            return Err(format!("update {i}: self-loop update on vertex {}", u.a));
        }
        if u.new_weight == INF {
            return Err(format!(
                "update {i}: weight INF is reserved for unreachability; road closures are \
                 structural updates, not weight updates"
            ));
        }
        if !g.has_edge(u.a, u.b) {
            return Err(format!("update {i}: no edge between {} and {}", u.a, u.b));
        }
    }
    Ok(())
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maintenance family the writer uses for every batch.
    pub algo: Maintenance,
    /// Worker threads for tree-sharded batch repair
    /// (`Stl::apply_batch_sharded`). `1` runs the sharded schedule on one
    /// worker; higher values fan label repair out by owning stable tree.
    /// Both families parallelise: Label Search by per-ancestor ownership,
    /// Pareto Search by clamping validity intervals at the spine boundary.
    /// Labels are byte-identical to the serial drivers at any setting.
    /// Defaults to the machine's available parallelism.
    pub repair_threads: usize,
    /// Quiescence window for epoch compaction: after this many
    /// *consecutive* epochs whose dirty-chunk ratio stayed at or below
    /// [`ServerConfig::compact_dirty_ratio`], the writer re-flattens the
    /// label arena, spine stores, and CSR weights into contiguous aligned
    /// allocations, switching readers onto the branch-free direct-offset
    /// query path from the next published snapshot on. `0` disables the
    /// trigger entirely. The default (12 epochs) is deliberately
    /// conservative: compaction copies the whole arena, so it should fire
    /// when traffic has genuinely gone quiet, not between two bursts.
    pub compact_after_quiet_epochs: u32,
    /// An epoch counts as *quiet* when `chunks copied / total chunks` is at
    /// or below this ratio (no-op batches have ratio 0). Default `0.02` —
    /// under 2% of the world rewritten per batch.
    pub compact_dirty_ratio: f64,
}

impl ServerConfig {
    /// [`ServerConfig::default`] with environment overrides:
    ///
    /// * `STL_REPAIR_THREADS` (positive integer) — `repair_threads`; the
    ///   hook the CI release-stress matrix uses to exercise the repair
    ///   pipeline at both 1 and 4 workers.
    /// * `STL_COMPACT_QUIET_EPOCHS` (integer, `0` disables) —
    ///   [`ServerConfig::compact_after_quiet_epochs`].
    /// * `STL_COMPACT_DIRTY_RATIO` (float in `0.0..=1.0`) —
    ///   [`ServerConfig::compact_dirty_ratio`].
    ///
    /// A set-but-malformed variable is an **error**, not a silent default:
    /// `STL_REPAIR_THREADS=abc` (or `=0`) used to fall back to the default
    /// without a word, which meant a typo in the CI matrix quietly tested
    /// the wrong configuration. Callers decide how loud to be — the test
    /// harnesses `expect` the result so a bad matrix entry fails the run.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = Self::default();
        if let Some(t) = parsed_env::<usize>("STL_REPAIR_THREADS")? {
            if t == 0 {
                return Err("STL_REPAIR_THREADS must be at least 1".into());
            }
            cfg.repair_threads = t;
        }
        if let Some(q) = parsed_env::<u32>("STL_COMPACT_QUIET_EPOCHS")? {
            cfg.compact_after_quiet_epochs = q;
        }
        if let Some(r) = parsed_env::<f64>("STL_COMPACT_DIRTY_RATIO")? {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("STL_COMPACT_DIRTY_RATIO must be within 0.0..=1.0, got {r}"));
            }
            cfg.compact_dirty_ratio = r;
        }
        Ok(cfg)
    }
}

/// Read and parse an environment variable, distinguishing "absent" (fine,
/// `None`) from "present but unparsable" (an error worth surfacing).
fn parsed_env<T: std::str::FromStr>(key: &str) -> Result<Option<T>, String> {
    match std::env::var(key) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => {
            Err(format!("{key} is set but not valid unicode: {raw:?}"))
        }
        Ok(raw) => raw
            .trim()
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{key}={raw:?} is not a valid {}", std::any::type_name::<T>())),
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            algo: Maintenance::ParetoSearch,
            repair_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            compact_after_quiet_epochs: 12,
            compact_dirty_ratio: 0.02,
        }
    }
}

/// Position of a submitted batch in the writer's processing sequence: the
/// batch's [`BatchOutcome`] is available — and, if applied, its epoch is
/// visible to readers — once the writer has processed the ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// Writer progress guarded by the publish barrier. `processed` counts every
/// ticket the writer finished (applied *or* rejected); `generation` counts
/// only applied batches, so the two diverge exactly by the rejections.
#[derive(Debug, Clone, Copy, Default)]
struct Progress {
    processed: u64,
    generation: u64,
    exited: bool,
}

struct Shared {
    /// The publish slot. Writers hold the write half only for the pointer
    /// swap; readers clone the `Arc` out under the read half.
    current: RwLock<Arc<Snapshot>>,
    stats: StatsCells,
    progress: Mutex<Progress>,
    published: Condvar,
    /// Reasons of the most recent `REJECTION_WINDOW` (1024) rejected tickets,
    /// oldest first. Tickets absent from this window were applied (or their
    /// reason aged out — see [`StlServer::wait_for`]).
    rejections: Mutex<VecDeque<(u64, Arc<str>)>>,
}

/// Epoch-snapshot query service over a [`Stl`] index.
///
/// See the crate docs for the protocol and its consistency guarantee. The
/// server starts its writer thread in [`StlServer::start`] and joins it in
/// [`StlServer::shutdown`] (or on drop).
pub struct StlServer {
    shared: Arc<Shared>,
    /// Queue handle plus the ticket counter, under one lock: assigning a
    /// ticket and enqueueing its batch must be atomic together, or channel
    /// order could diverge from ticket order under concurrent submitters
    /// (and `wait_for` would then report a not-yet-applied batch as
    /// published). `None` after shutdown.
    tx: Mutex<Option<(Sender<Vec<EdgeUpdate>>, u64)>>,
    writer: Option<JoinHandle<()>>,
}

impl StlServer {
    /// Take ownership of the world (graph + index) and start serving.
    ///
    /// The initial state is published immediately as generation 0.
    pub fn start(graph: CsrGraph, stl: Stl, cfg: ServerConfig) -> Self {
        let first = Arc::new(Snapshot::new(0, graph.clone(), stl.clone()));
        let shared = Arc::new(Shared {
            current: RwLock::new(first),
            stats: StatsCells::default(),
            progress: Mutex::new(Progress::default()),
            published: Condvar::new(),
            rejections: Mutex::new(VecDeque::new()),
        });
        let (tx, rx) = mpsc::channel::<Vec<EdgeUpdate>>();
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("stl-writer".into())
            .spawn(move || {
                // Flag writer exit (normal drain, or a panic from an
                // *internal* bug — bad input no longer reaches the apply
                // path) so `wait_for` never blocks forever.
                struct ExitFlag(Arc<Shared>);
                impl Drop for ExitFlag {
                    fn drop(&mut self) {
                        self.0.progress.lock().unwrap().exited = true;
                        self.0.published.notify_all();
                    }
                }
                let _flag = ExitFlag(Arc::clone(&writer_shared));
                let mut graph = graph;
                let mut stl = stl;
                let mut pool = EnginePool::new();
                let mut generation = 0u64;
                let mut processed = 0u64;
                // Consecutive epochs at or below the quiet dirty ratio —
                // the compaction trigger's streak counter.
                let mut quiet_epochs = 0u32;
                while let Ok(batch) = rx.recv() {
                    processed += 1;
                    let stats = &writer_shared.stats;
                    stats.updates_submitted.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    // The bugfix that makes remote serving survivable: a bad
                    // update used to kill the writer (apply_batch's panic
                    // contract), turning one malformed client batch into a
                    // total outage. Validate first; reject without mutating.
                    if let Err(reason) = validate_batch(&graph, &batch) {
                        stats.batches_rejected.fetch_add(1, Ordering::Relaxed);
                        {
                            let mut rej = writer_shared.rejections.lock().unwrap();
                            if rej.len() == REJECTION_WINDOW {
                                rej.pop_front();
                            }
                            rej.push_back((processed, reason.into()));
                        }
                        let mut p = writer_shared.progress.lock().unwrap();
                        p.processed = processed;
                        drop(p);
                        writer_shared.published.notify_all();
                        continue;
                    }
                    let t_apply = Instant::now();
                    let (ustats, report) = stl.apply_batch_sharded(
                        &mut graph,
                        &batch,
                        cfg.algo,
                        &mut pool,
                        cfg.repair_threads,
                    );
                    stats
                        .apply_ns_total
                        .fetch_add(t_apply.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    stats.repair_shards_last.store(report.shards_touched as u64, Ordering::Relaxed);
                    stats.repair_shard_ns_max_last.store(report.max_ns(), Ordering::Relaxed);
                    stats.repair_shard_ns_sum_last.store(report.sum_ns(), Ordering::Relaxed);
                    stats.trees_touched_total.fetch_add(ustats.trees_touched, Ordering::Relaxed);
                    stats.trees_skipped_total.fetch_add(ustats.trees_skipped, Ordering::Relaxed);
                    // Applying the batch COW-promoted exactly the chunks it
                    // wrote (the previous snapshot pinned everything else);
                    // drain the copy accounting into the public counters.
                    let cow = stl.take_cow_stats() + graph.take_cow_stats();
                    stats.publish_bytes_copied.fetch_add(cow.bytes_copied, Ordering::Relaxed);
                    stats.chunks_copied_last.store(cow.chunks_copied, Ordering::Relaxed);
                    // Quiescence-triggered compaction: when the dirty-chunk
                    // rate has stayed below the threshold for enough
                    // consecutive epochs, re-flatten labels + spine + CSR
                    // weights so the snapshot published below (and every one
                    // after it, until the next write) serves the
                    // direct-offset query path.
                    if cfg.compact_after_quiet_epochs > 0 {
                        let total_chunks = (stl.num_chunks() + graph.num_weight_chunks()).max(1);
                        let ratio = cow.chunks_copied as f64 / total_chunks as f64;
                        quiet_epochs =
                            if ratio <= cfg.compact_dirty_ratio { quiet_epochs + 1 } else { 0 };
                        if quiet_epochs >= cfg.compact_after_quiet_epochs
                            && !(stl.is_flat() && graph.weights_flat())
                        {
                            let bytes = stl.compact() + graph.compact_weights();
                            // Drop the compaction pass out of the next
                            // epoch's COW window — it is accounted here, in
                            // the dedicated counters.
                            stl.take_cow_stats();
                            graph.take_cow_stats();
                            if bytes > 0 {
                                stats.compactions_total.fetch_add(1, Ordering::Relaxed);
                                stats.bytes_flattened_total.fetch_add(bytes, Ordering::Relaxed);
                            }
                            quiet_epochs = 0;
                        }
                    }
                    // Publish: O(touched) — the clone below copies only the
                    // Arc chunk tables; every byte not written by this batch
                    // is shared with the previous epoch. Every *valid* batch
                    // publishes — even one normalised away to a no-op — so
                    // applied tickets always resolve to a generation.
                    generation += 1;
                    let t_pub = Instant::now();
                    let snap = Arc::new(Snapshot::new(generation, graph.clone(), stl.clone()));
                    let snap_flat = snap.is_flat();
                    *writer_shared.current.write().unwrap() = snap;
                    // Stored only *after* the pointer swap: storing before it
                    // opened a window where stats() reported a flat snapshot
                    // while readers still held the chunked one.
                    stats.snapshot_is_flat.store(u64::from(snap_flat), Ordering::Relaxed);
                    let pub_ns = t_pub.elapsed().as_nanos() as u64;
                    stats.publish_ns_total.fetch_add(pub_ns, Ordering::Relaxed);
                    stats.publish_ns_last.store(pub_ns, Ordering::Relaxed);
                    stats.batches_applied.store(generation, Ordering::Relaxed);
                    let mut p = writer_shared.progress.lock().unwrap();
                    p.processed = processed;
                    p.generation = generation;
                    drop(p);
                    writer_shared.published.notify_all();
                }
            })
            .expect("spawn stl-writer thread");
        Self { shared, tx: Mutex::new(Some((tx, 0))), writer: Some(writer) }
    }

    /// Enqueue a batch of edge-weight updates for the writer thread.
    ///
    /// Returns immediately. The writer validates the batch against the graph
    /// before applying it: a valid batch is applied and published (visible
    /// to readers once [`StlServer::wait_for`] returns
    /// [`BatchOutcome::Applied`] for the ticket), an invalid one is dropped
    /// whole with [`BatchOutcome::Rejected`] — the writer stays alive and
    /// later submissions are unaffected. Panics only if called after
    /// [`StlServer::shutdown`] (unreachable through the owned API).
    pub fn submit(&self, batch: Vec<EdgeUpdate>) -> Ticket {
        let mut tx = self.tx.lock().unwrap();
        let (sender, count) = tx.as_mut().expect("server already shut down");
        // A failed send means the writer died (an internal bug, since bad
        // input is rejected, not fatal). Still hand out the ticket: wait_for
        // reports the death as a Rejected outcome instead of panicking here.
        let _ = sender.send(batch);
        *count += 1;
        Ticket(*count)
    }

    /// Block until the writer has processed the batch behind `ticket`, and
    /// report what happened to it.
    ///
    /// Never panics: a batch that failed validation — or a writer lost to an
    /// internal bug before reaching the ticket — is reported as
    /// [`BatchOutcome::Rejected`] with the reason, and the server keeps
    /// answering queries either way. Rejection reasons are retained for the
    /// most recent `REJECTION_WINDOW` (1024) rejections; waiting promptly (as
    /// every caller in this workspace does) always observes the true
    /// outcome.
    pub fn wait_for(&self, ticket: Ticket) -> BatchOutcome {
        let guard = self.shared.progress.lock().unwrap();
        let guard = self
            .shared
            .published
            .wait_while(guard, |p| p.processed < ticket.0 && !p.exited)
            .unwrap();
        if guard.processed < ticket.0 {
            return BatchOutcome::Rejected(format!(
                "stl-writer thread terminated before ticket {} (processed {})",
                ticket.0, guard.processed
            ));
        }
        drop(guard);
        let rejections = self.shared.rejections.lock().unwrap();
        match rejections.iter().rev().find(|(t, _)| *t == ticket.0) {
            Some((_, reason)) => BatchOutcome::Rejected(reason.to_string()),
            None => BatchOutcome::Applied,
        }
    }

    /// Block until everything submitted so far has been processed (applied
    /// and published, or rejected).
    pub fn drain(&self) {
        let count = self.tx.lock().unwrap().as_ref().expect("server already shut down").1;
        self.wait_for(Ticket(count));
    }

    /// Clone out the latest published epoch. O(1); never blocks the writer
    /// beyond the duration of a pointer swap.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.shared.current.read().unwrap())
    }

    /// One-shot query against the latest epoch, counted in the stats.
    ///
    /// Sustained readers should hold a [`StlServer::snapshot`] instead and
    /// batch-report with [`StlServer::record_queries`].
    pub fn query(&self, s: VertexId, t: VertexId) -> Dist {
        self.shared.stats.queries_served.fetch_add(1, Ordering::Relaxed);
        self.snapshot().query(s, t)
    }

    /// Fold `n` externally served queries into [`ServerStats::queries_served`].
    pub fn record_queries(&self, n: u64) {
        self.shared.stats.queries_served.fetch_add(n, Ordering::Relaxed);
    }

    /// Latest published generation. Advances per *applied* batch — rejected
    /// tickets consume no generation.
    pub fn generation(&self) -> u64 {
        self.shared.progress.lock().unwrap().generation
    }

    /// Count a batch rejected before it reached the writer (the adaptive
    /// batcher pre-validates so one bad client request cannot poison a
    /// merged batch); keeps [`ServerStats::batches_rejected`] covering both
    /// rejection sites.
    pub(crate) fn note_rejected_batch(&self) {
        self.shared.stats.batches_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.load()
    }

    /// Close the queue, drain outstanding batches, join the writer, and
    /// return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        drop(self.tx.lock().unwrap().take());
        if let Some(w) = self.writer.take() {
            // The writer drains remaining batches then sees the closed
            // channel. A panic inside it already printed its message; the
            // join error adds nothing.
            let _ = w.join();
        }
    }
}

impl Drop for StlServer {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stl_core::StlConfig;
    use stl_graph::builder::from_edges;
    use stl_pathfinding::dijkstra;
    use stl_workloads::{generate, RoadNetConfig};

    fn diamond() -> CsrGraph {
        from_edges(4, vec![(0, 1, 3), (1, 2, 4), (2, 3, 5), (0, 3, 20)])
    }

    fn start(g: &CsrGraph) -> StlServer {
        let stl = Stl::build(g, &StlConfig::default());
        StlServer::start(g.clone(), stl, ServerConfig::default())
    }

    #[test]
    fn generation_zero_matches_initial_index() {
        let g = diamond();
        let server = start(&g);
        let snap = server.snapshot();
        assert_eq!(snap.generation(), 0);
        assert_eq!(snap.query(0, 3), 12);
        assert_eq!(server.generation(), 0);
    }

    #[test]
    fn publishes_one_generation_per_batch() {
        let g = diamond();
        let server = start(&g);
        let t1 = server.submit(vec![EdgeUpdate::new(1, 2, 40)]);
        let t2 = server.submit(vec![EdgeUpdate::new(1, 2, 4)]);
        let t3 = server.submit(vec![EdgeUpdate::new(0, 3, 2)]);
        assert!((t1, t2, t3) < (t2, t3, Ticket(4)));
        server.wait_for(t3);
        let snap = server.snapshot();
        assert_eq!(snap.generation(), 3);
        assert_eq!(snap.query(0, 3), 2);
        let stats = server.shutdown();
        assert_eq!(stats.batches_applied, 3);
        assert_eq!(stats.updates_submitted, 3);
        assert!(stats.publish_ns_total >= stats.publish_ns_last);
    }

    #[test]
    fn old_snapshots_stay_self_consistent() {
        let g = diamond();
        let server = start(&g);
        let old = server.snapshot();
        let t = server.submit(vec![EdgeUpdate::new(2, 3, 50)]);
        server.wait_for(t);
        // The pre-update epoch still answers with pre-update distances.
        assert_eq!(old.generation(), 0);
        assert_eq!(old.query(0, 3), 12);
        assert_eq!(server.snapshot().query(0, 3), 20);
    }

    #[test]
    fn noop_batches_still_publish() {
        let g = diamond();
        let server = start(&g);
        let t = server.submit(vec![EdgeUpdate::new(0, 1, 3)]); // already 3
        server.wait_for(t);
        assert_eq!(server.generation(), 1);
    }

    #[test]
    fn drain_waits_for_everything_submitted() {
        let g = generate(&RoadNetConfig::sized(150, 11));
        let server = start(&g);
        let edges: Vec<_> = g.edges().take(20).collect();
        for (i, &(a, b, w)) in edges.iter().enumerate() {
            server.submit(vec![EdgeUpdate::new(a, b, w + i as u32 % 7)]);
        }
        server.drain();
        assert_eq!(server.generation(), edges.len() as u64);
    }

    #[test]
    fn served_queries_match_dijkstra_across_epochs() {
        let mut g = generate(&RoadNetConfig::sized(200, 13));
        let server = start(&g);
        let edges: Vec<_> = g.edges().step_by(5).take(8).collect();
        for &(a, b, w) in &edges {
            let t = server.submit(vec![EdgeUpdate::new(a, b, w * 3)]);
            server.wait_for(t);
            g.set_weight(a, b, w * 3).unwrap();
            let snap = server.snapshot();
            for (s, dst) in [(0u32, 7u32), (3, 199), (50, 120)] {
                assert_eq!(snap.query(s, dst), dijkstra::distance(&g, s, dst));
            }
        }
        assert_eq!(server.generation(), 8);
    }

    #[test]
    fn publish_shares_untouched_chunks_across_generations() {
        // The COW publish contract: a batch that writes nothing leaves every
        // chunk of the new generation physically identical (Arc::ptr_eq) to
        // the previous one, and a real batch unshares only what it wrote.
        let g = generate(&RoadNetConfig::sized(200, 33));
        let server = start(&g);
        let snap0 = server.snapshot();

        // No-op batch (same weight): generation bumps, zero bytes copied,
        // all chunks shared.
        let (a, b, w) = g.edges().next().unwrap();
        server.wait_for(server.submit(vec![EdgeUpdate::new(a, b, w)]));
        let snap1 = server.snapshot();
        assert_eq!(snap1.generation(), 1);
        assert!(snap0.graph().shares_topology(snap1.graph()));
        let labels0 = snap0.stl().labels();
        let labels1 = snap1.stl().labels();
        assert_eq!(labels0.shared_chunks_with(labels1), labels0.num_chunks());
        for c in 0..labels0.num_chunks() {
            assert!(labels0.shares_chunk(labels1, c), "label chunk {c} must stay shared");
        }
        assert_eq!(
            snap0.graph().shared_weight_chunks(snap1.graph()),
            snap0.graph().num_weight_chunks()
        );
        assert_eq!(server.stats().publish_bytes_copied, 0);

        // Real batch: something is copied, but strictly less than the whole
        // world (the full-clone cost).
        server.wait_for(server.submit(vec![EdgeUpdate::new(a, b, w * 7)]));
        let snap2 = server.snapshot();
        let stats = server.stats();
        assert!(stats.publish_bytes_copied > 0, "a real update must copy its chunks");
        let full = snap2.stl().labels().memory_bytes() + snap2.graph().memory_bytes();
        assert!(
            (stats.publish_bytes_copied as usize) < full,
            "copied {} of {} — COW must not degenerate to a full clone",
            stats.publish_bytes_copied,
            full
        );
        assert!(stats.chunks_copied_last > 0);
        assert!(snap1.graph().shares_topology(snap2.graph()));
        server.shutdown();
    }

    #[test]
    fn sharded_writer_matches_oracle_and_reports_shard_timings() {
        // Label-search writer with a multi-thread repair fan-out: every
        // published epoch must still match Dijkstra exactly, and the
        // per-shard repair accounting must reach ServerStats.
        let mut g = generate(&RoadNetConfig::sized(220, 21));
        let stl = Stl::build(&g, &StlConfig::default());
        let server = StlServer::start(
            g.clone(),
            stl,
            ServerConfig {
                algo: stl_core::Maintenance::LabelSearch,
                repair_threads: 3,
                ..Default::default()
            },
        );
        let edges: Vec<_> = g.edges().step_by(7).take(6).collect();
        for &(a, b, w) in &edges {
            let t = server.submit(vec![EdgeUpdate::new(a, b, w * 5)]);
            server.wait_for(t);
            g.set_weight(a, b, w * 5).unwrap();
            let snap = server.snapshot();
            for (s, dst) in [(0u32, 150u32), (9, 201), (60, 130)] {
                assert_eq!(snap.query(s, dst), dijkstra::distance(&g, s, dst));
            }
            let stats = server.stats();
            assert!(stats.repair_shards_last >= 1, "sharded repair must report its shards");
            assert!(stats.repair_shard_ns_sum_last >= stats.repair_shard_ns_max_last);
        }
        let stats = server.shutdown();
        assert!(stats.trees_touched_total >= edges.len() as u64);
        assert!(stats.trees_skipped_total > 0, "single-edge batches must skip most stable trees");
    }

    #[test]
    fn pareto_sharded_writer_matches_oracle_and_reports_shard_timings() {
        // The default (Pareto) writer with a multi-thread repair fan-out:
        // every published epoch must match Dijkstra exactly and the shard
        // accounting must reach ServerStats — Pareto is no longer the
        // serial-only family.
        let mut g = generate(&RoadNetConfig::sized(220, 27));
        let stl = Stl::build(&g, &StlConfig::default());
        let server = StlServer::start(
            g.clone(),
            stl,
            ServerConfig {
                algo: stl_core::Maintenance::ParetoSearch,
                repair_threads: 3,
                ..Default::default()
            },
        );
        let edges: Vec<_> = g.edges().step_by(9).take(5).collect();
        for &(a, b, w) in &edges {
            let t = server.submit(vec![EdgeUpdate::new(a, b, w * 4)]);
            server.wait_for(t);
            g.set_weight(a, b, w * 4).unwrap();
            let snap = server.snapshot();
            for (s, dst) in [(0u32, 150u32), (9, 201), (60, 130)] {
                assert_eq!(snap.query(s, dst), dijkstra::distance(&g, s, dst));
            }
            let stats = server.stats();
            assert!(stats.repair_shards_last >= 1, "pareto repair must report its shards");
            assert!(stats.repair_shard_ns_sum_last >= stats.repair_shard_ns_max_last);
        }
        let stats = server.shutdown();
        assert!(stats.trees_touched_total >= edges.len() as u64);
        assert!(stats.trees_skipped_total > 0, "single-edge batches must skip most stable trees");
    }

    #[test]
    fn config_from_env_overrides_repair_threads() {
        // Env mutation is process-global; keep the window tiny and restore.
        let key = "STL_REPAIR_THREADS";
        let prev = std::env::var(key).ok();
        std::env::set_var(key, "2");
        assert_eq!(ServerConfig::from_env().unwrap().repair_threads, 2);
        // Malformed or out-of-range values are errors now, not silent
        // defaults — a CI-matrix typo must fail the run, loudly.
        std::env::set_var(key, "not a number");
        let err = ServerConfig::from_env().unwrap_err();
        assert!(err.contains("STL_REPAIR_THREADS"), "error must name the variable: {err}");
        std::env::set_var(key, "0");
        let err = ServerConfig::from_env().unwrap_err();
        assert!(err.contains("at least 1"), "zero threads must be rejected: {err}");
        match prev {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
    }

    #[test]
    fn quiescence_triggers_compaction_and_flat_snapshots() {
        // With the trigger wound down to "compact after every epoch", the
        // writer must flatten the arena, report it in ServerStats, and keep
        // serving exact distances from the flat read path.
        let mut g = generate(&RoadNetConfig::sized(180, 41));
        let stl = Stl::build(&g, &StlConfig::default());
        let server = StlServer::start(
            g.clone(),
            stl,
            ServerConfig {
                compact_after_quiet_epochs: 1,
                compact_dirty_ratio: 1.0,
                ..Default::default()
            },
        );
        let edges: Vec<_> = g.edges().step_by(11).take(4).collect();
        for &(a, b, w) in &edges {
            server.wait_for(server.submit(vec![EdgeUpdate::new(a, b, w * 3)]));
            g.set_weight(a, b, w * 3).unwrap();
            let snap = server.snapshot();
            for (s, t) in [(0u32, 140u32), (7, 101), (33, 90)] {
                assert_eq!(snap.query(s, t), dijkstra::distance(&g, s, t));
            }
        }
        let stats = server.shutdown();
        assert!(stats.compactions_total >= 1, "every-epoch trigger must have compacted");
        assert!(stats.bytes_flattened_total > 0);
        assert!(stats.snapshot_is_flat, "last published snapshot must be flat");
    }

    #[test]
    fn compaction_never_mutates_pinned_snapshots() {
        // A reader holding an Arc<Snapshot> across a compaction (and further
        // batches) must observe the exact distances of its own generation —
        // compaction re-points the *writer's* chunks, never a published epoch.
        let mut g = generate(&RoadNetConfig::sized(160, 53));
        let stl = Stl::build(&g, &StlConfig::default());
        let server = StlServer::start(
            g.clone(),
            stl,
            ServerConfig {
                compact_after_quiet_epochs: 1,
                compact_dirty_ratio: 1.0,
                ..Default::default()
            },
        );
        let pairs = [(0u32, 120u32), (5, 99), (41, 77), (12, 150)];
        let pinned = server.snapshot();
        let oracle: Vec<_> = pairs.iter().map(|&(s, t)| dijkstra::distance(&g, s, t)).collect();
        assert_eq!(pinned.generation(), 0);

        let edges: Vec<_> = g.edges().step_by(13).take(5).collect();
        for &(a, b, w) in &edges {
            server.wait_for(server.submit(vec![EdgeUpdate::new(a, b, w + 9)]));
            g.set_weight(a, b, w + 9).unwrap();
        }
        let stats = server.stats();
        assert!(stats.compactions_total >= 1, "trigger must have fired mid-run");

        // The pinned generation-0 snapshot still answers generation-0 truth.
        assert_eq!(pinned.generation(), 0);
        for (&(s, t), &d) in pairs.iter().zip(&oracle) {
            assert_eq!(pinned.query(s, t), d, "pinned snapshot changed under compaction");
        }
        // And the current snapshot answers the updated graph, from a flat arena.
        let snap = server.snapshot();
        assert!(snap.is_flat());
        for &(s, t) in &pairs {
            assert_eq!(snap.query(s, t), dijkstra::distance(&g, s, t));
        }
        server.shutdown();
    }

    #[test]
    fn config_from_env_overrides_compaction_knobs() {
        let keys = ["STL_COMPACT_QUIET_EPOCHS", "STL_COMPACT_DIRTY_RATIO"];
        let prev: Vec<_> = keys.iter().map(|k| std::env::var(k).ok()).collect();
        std::env::set_var(keys[0], "3");
        std::env::set_var(keys[1], "0.5");
        let cfg = ServerConfig::from_env().unwrap();
        assert_eq!(cfg.compact_after_quiet_epochs, 3);
        assert!((cfg.compact_dirty_ratio - 0.5).abs() < 1e-9);
        std::env::set_var(keys[1], "1.5");
        let err = ServerConfig::from_env().unwrap_err();
        assert!(err.contains("0.0..=1.0"), "out-of-range ratio must error: {err}");
        for (k, v) in keys.iter().zip(prev) {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
    }

    #[test]
    fn rejected_batch_leaves_server_serving() {
        // The regression this PR exists for: a batch with a nonexistent edge
        // must come back Rejected — writer alive, queries exact, and later
        // valid batches applied and published as new generations.
        let g = diamond();
        let server = start(&g);
        let bad = server.submit(vec![EdgeUpdate::new(0, 2, 9)]); // no such edge
        match server.wait_for(bad) {
            BatchOutcome::Rejected(reason) => {
                assert!(reason.contains("no edge between 0 and 2"), "got: {reason}");
            }
            BatchOutcome::Applied => panic!("nonexistent edge must be rejected"),
        }
        // No generation consumed, state untouched.
        assert_eq!(server.generation(), 0);
        assert_eq!(server.snapshot().query(0, 3), 12);
        // The writer is still alive: a valid batch publishes a new epoch.
        let good = server.submit(vec![EdgeUpdate::new(0, 3, 2)]);
        assert_eq!(server.wait_for(good), BatchOutcome::Applied);
        assert_eq!(server.generation(), 1);
        assert_eq!(server.snapshot().query(0, 3), 2);
        let stats = server.shutdown();
        assert_eq!(stats.batches_rejected, 1);
        assert_eq!(stats.batches_applied, 1);
    }

    #[test]
    fn validation_names_the_offense() {
        let g = diamond();
        assert!(validate_batch(&g, &[EdgeUpdate::new(0, 1, 5)]).is_ok());
        let oob = validate_batch(&g, &[EdgeUpdate::new(0, 99, 5)]).unwrap_err();
        assert!(oob.contains("out of range"), "got: {oob}");
        let selfloop = validate_batch(&g, &[EdgeUpdate::new(2, 2, 5)]).unwrap_err();
        assert!(selfloop.contains("self-loop"), "got: {selfloop}");
        let inf = validate_batch(&g, &[EdgeUpdate::new(0, 1, stl_graph::INF)]).unwrap_err();
        assert!(inf.contains("INF"), "got: {inf}");
        // The index of the offending update is part of the reason.
        let second =
            validate_batch(&g, &[EdgeUpdate::new(0, 1, 5), EdgeUpdate::new(1, 3, 5)]).unwrap_err();
        assert!(second.starts_with("update 1:"), "got: {second}");
    }

    #[test]
    fn rejections_interleave_with_applies() {
        // Tickets and generations diverge by exactly the rejections, and
        // every ticket reports its own outcome.
        let g = diamond();
        let server = start(&g);
        let t1 = server.submit(vec![EdgeUpdate::new(1, 2, 7)]); // valid
        let t2 = server.submit(vec![EdgeUpdate::new(1, 3, 7)]); // no such edge
        let t3 = server.submit(vec![EdgeUpdate::new(2, 3, 9)]); // valid
        assert_eq!(server.wait_for(t1), BatchOutcome::Applied);
        assert!(!server.wait_for(t2).is_applied());
        assert_eq!(server.wait_for(t3), BatchOutcome::Applied);
        // Re-reading an outcome is stable (the window retains it).
        assert!(!server.wait_for(t2).is_applied());
        assert_eq!(server.generation(), 2);
        let stats = server.shutdown();
        assert_eq!(stats.batches_applied, 2);
        assert_eq!(stats.batches_rejected, 1);
        assert_eq!(stats.updates_submitted, 3);
    }

    #[test]
    fn flat_flag_tracks_the_published_snapshot() {
        // Regression for the ordering bug: snapshot_is_flat used to be
        // stored *before* the pointer swap, so stats() could claim a flat
        // snapshot while readers still got the chunked one. Pin the
        // invariant: after every wait_for, the flag equals the published
        // snapshot's own is_flat() — across epochs that flip it both ways
        // (chunked → compacted/flat → written/chunked again).
        let mut g = generate(&RoadNetConfig::sized(160, 47));
        let stl = Stl::build(&g, &StlConfig::default());
        let server = StlServer::start(
            g.clone(),
            stl,
            ServerConfig {
                compact_after_quiet_epochs: 2,
                compact_dirty_ratio: 1.0,
                ..Default::default()
            },
        );
        let mut seen_flat = false;
        let mut seen_chunked = false;
        let edges: Vec<_> = g.edges().step_by(9).take(6).collect();
        for &(a, b, w) in &edges {
            server.wait_for(server.submit(vec![EdgeUpdate::new(a, b, w + 5)]));
            g.set_weight(a, b, w + 5).unwrap();
            let snap = server.snapshot();
            let stats = server.stats();
            assert_eq!(
                stats.snapshot_is_flat,
                snap.is_flat(),
                "stats flag diverged from the published snapshot at generation {}",
                snap.generation()
            );
            seen_flat |= snap.is_flat();
            seen_chunked |= !snap.is_flat();
        }
        assert!(seen_flat && seen_chunked, "test must cover both flag states");
        server.shutdown();
    }

    #[test]
    fn query_and_record_feed_stats() {
        let g = diamond();
        let server = start(&g);
        assert_eq!(server.query(0, 2), 7);
        server.record_queries(41);
        assert_eq!(server.stats().queries_served, 42);
    }

    #[test]
    fn concurrent_readers_see_only_published_epochs() {
        // Small always-on variant of tests/concurrent_consistency.rs that is
        // cheap enough for debug runs: readers race a live writer and every
        // observation must match the oracle of its stamped generation.
        let g0 = generate(&RoadNetConfig::sized(120, 17));
        let edges: Vec<_> = g0.edges().step_by(3).take(6).collect();
        // Oracle per generation for a fixed pair pool.
        let pool: Vec<(u32, u32)> = vec![(0, 60), (5, 110), (33, 90), (2, 40)];
        let mut oracles: Vec<Vec<Dist>> = Vec::new();
        let mut g = g0.clone();
        oracles.push(pool.iter().map(|&(s, t)| dijkstra::distance(&g, s, t)).collect());
        for &(a, b, w) in &edges {
            g.set_weight(a, b, w * 4).unwrap();
            oracles.push(pool.iter().map(|&(s, t)| dijkstra::distance(&g, s, t)).collect());
        }
        let server = start(&g0);
        let stop_flag = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let stop = &stop_flag;
            let server_ref = &server;
            let pool_ref = &pool;
            let oracles_ref = &oracles;
            for reader in 0..3 {
                scope.spawn(move || {
                    let mut i = reader;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = server_ref.snapshot();
                        let (s, t) = pool_ref[i % pool_ref.len()];
                        let expect = oracles_ref[snap.generation() as usize][i % pool_ref.len()];
                        assert_eq!(snap.query(s, t), expect, "gen {}", snap.generation());
                        i += 1;
                    }
                });
            }
            for &(a, b, w) in &edges {
                let t = server.submit(vec![EdgeUpdate::new(a, b, w * 4)]);
                server.wait_for(t);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(server.generation(), edges.len() as u64);
    }
}
