//! Mixed-trace replay driver.
//!
//! `stl serve` and `examples/live_service.rs` run the same experiment: split
//! a pre-generated trace into queries (sharded across reader threads that
//! hammer the latest snapshot until told to stop) and batches (fed to the
//! writer one publish at a time). This is that driver, shared so the
//! concurrency scaffolding exists exactly once.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use stl_core::DynamicDistanceIndex;
use stl_graph::{EdgeUpdate, VertexId};

use crate::server::StlServer;

/// Replay an interleaved workload: `readers` threads sweep their shard of
/// `queries` against fresh snapshots in a loop while every batch in
/// `batches` flows through the writer (submitted, then awaited, so readers
/// span every published generation). Returns the wall-clock time of the run;
/// queries served are folded into [`crate::ServerStats::queries_served`].
///
/// Readers re-grab the snapshot per query on purpose: the swap-slot
/// acquisition is part of the serving cost this driver exists to measure.
pub fn replay_mixed<I: DynamicDistanceIndex>(
    server: &StlServer<I>,
    queries: &[(VertexId, VertexId)],
    batches: &[Vec<EdgeUpdate>],
    readers: usize,
) -> Duration {
    assert!(readers >= 1, "need at least one reader thread");
    let t0 = Instant::now();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let done = &done;
        for r in 0..readers {
            scope.spawn(move || {
                // An empty shard (more readers than queries) would otherwise
                // hot-spin against the stop flag for the whole writer run.
                if r >= queries.len() {
                    return;
                }
                let mut served = 0u64;
                let mut acc = 0u64;
                // The flag is checked per query, not per sweep: a sweep-level
                // check would append a full writer-idle shard pass to the
                // measured window (and to the reported queries/s).
                'outer: loop {
                    for &(s, t) in queries.iter().skip(r).step_by(readers) {
                        if done.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        acc = acc.wrapping_add(server.snapshot().query(s, t) as u64);
                        served += 1;
                    }
                }
                std::hint::black_box(acc);
                server.record_queries(served);
            });
        }
        for batch in batches {
            let ticket = server.submit(batch.clone());
            server.wait_for(ticket);
        }
        done.store(true, Ordering::Relaxed);
    });
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use stl_core::{Stl, StlConfig};
    use stl_workloads::{generate, RoadNetConfig};

    #[test]
    fn replay_serves_queries_and_publishes_all_batches() {
        let g = generate(&RoadNetConfig::sized(150, 3));
        let stl = Stl::build(&g, &StlConfig::default());
        let server = StlServer::start(g.clone(), stl, ServerConfig::default());
        let queries = [(0u32, 100u32), (5, 60), (20, 140)];
        let batches: Vec<Vec<EdgeUpdate>> =
            g.edges().take(5).map(|(a, b, w)| vec![EdgeUpdate::new(a, b, w * 2)]).collect();
        let wall = replay_mixed(&server, &queries, &batches, 2);
        assert!(wall > Duration::ZERO);
        let stats = server.shutdown();
        assert_eq!(stats.batches_applied, 5);
        // No lower bound on queries_served: readers stop per-query, and a
        // reader scheduled after the writer drains may legitimately serve 0.
    }

    #[test]
    fn replay_with_no_batches_terminates() {
        let g = generate(&RoadNetConfig::sized(100, 4));
        let stl = Stl::build(&g, &StlConfig::default());
        let server = StlServer::start(g, stl, ServerConfig::default());
        replay_mixed(&server, &[(0, 50)], &[], 1);
        assert_eq!(server.generation(), 0);
    }
}
