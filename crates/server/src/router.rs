//! Process-sharded deployment: a scatter-gather **router** in front of N
//! shard-worker processes.
//!
//! ## Replication model
//!
//! Every worker is a *full replica* running the ordinary serving stack
//! ([`StlServer`](crate::StlServer) + WAL + transport) with one twist:
//! [`crate::ServerConfig::owned_shards`] restricts label repair to the spine
//! plus a closed set of subtree shards ([`ShardSet::for_worker`] —
//! worker `k` of `n` owns subtree `s` iff `(s − 1) mod n == k`). Every
//! update batch is **broadcast to all workers**; each applies every weight
//! change (so graphs stay identical) but repairs only its owned label
//! units. The resulting invariant, pinned by `stl_core::shard`'s tests:
//!
//! * **spine label entries are exact on every replica** — any worker can
//!   answer any query whose common-ancestor scan stays on the spine
//!   (cross-tree pairs, spine endpoints);
//! * **deep (subtree) entries are exact on the owner** — a same-tree query
//!   must go to the tree's owner, and to nobody else.
//!
//! ## Sequence-number lockstep
//!
//! The router owns the cluster's update order. Batches are validated once
//! against topology (deterministic, so workers would agree anyway), stamped
//! with sequence number `cluster_generation + 1`, and replicated serially
//! under the sequencer lock via the `APPLY` opcode — which bypasses worker
//! batching precisely so that *batch seq == worker generation* stays true
//! on every replica. Workers refuse a gap (`apply out of order`) instead of
//! silently diverging; the router heals a refusal by replaying its bounded
//! **catch-up ring** of recent `(seq, batch)` pairs, the same mechanism
//! that re-synchronises a respawned worker after WAL recovery
//! ([`Router::reattach`]).
//!
//! ## Failure semantics
//!
//! A dead worker degrades the deployment, it does not take it down:
//! queries that *must* touch the dead worker's subtrees **fail fast** with
//! an explicit error; everything else is re-routed to live replicas.
//! Updates keep flowing (applied iff at least one replica acked — the
//! router's ring + the worker WALs re-converge the rest). Once a
//! supervisor respawns the worker, [`Router::reattach`] verifies its
//! recovered generation, replays the ring tail, and only then marks it
//! live again.

use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use stl_core::{Hierarchy, ShardSet, StlConfig, SPINE_SHARD};
use stl_graph::{CsrGraph, Dist, EdgeUpdate, VertexId};

use crate::proto::{write_frame, Endpoint, RemoteOutcome, RemoteStats, Request, Response};
use crate::server::validate_batch;
use crate::transport::{read_frame_polling, retryable, NetClient, NetListener, NetStream, ReadEnd};
use crate::DedupWindow;

/// Router knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Capacity of the catch-up ring: how many recent `(seq, batch)` pairs
    /// the router retains to re-synchronise a lagging or respawned worker.
    /// A worker that falls further behind than this cannot be caught up and
    /// stays down.
    pub catchup_ring: usize,
    /// Capacity of the idempotency-key window for keyed updates routed
    /// through the deployment.
    pub dedup_window: usize,
    /// How long to keep retrying the initial connection to each worker.
    pub connect_timeout_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self { catchup_ring: 4096, dedup_window: 4096, connect_timeout_ms: 10_000 }
    }
}

/// Router-local counters (monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Queries (including one-to-many) dispatched to a worker.
    pub queries_routed: u64,
    /// Update batches replicated across the deployment.
    pub updates_routed: u64,
    /// Requests refused because the only worker that could answer exactly
    /// is down.
    pub failfast_errors: u64,
    /// Catch-up replays that brought a worker back in step (inline heals
    /// and [`Router::reattach`] both count).
    pub respawn_catchups: u64,
}

struct WorkerSlot {
    endpoint: Endpoint,
    /// The router's persistent connection to this worker; `None` while the
    /// worker is down.
    conn: Mutex<Option<NetClient>>,
    live: AtomicBool,
}

struct Sequencer {
    /// Number of batches applied cluster-wide; the next batch is `+ 1`.
    cluster_gen: u64,
    /// Recent `(seq, batch)` pairs for catch-up, oldest first.
    ring: VecDeque<(u64, Vec<EdgeUpdate>)>,
    /// Client idempotency key → the seq that applied it.
    dedup: DedupWindow,
}

struct Counters {
    queries_routed: AtomicU64,
    updates_routed: AtomicU64,
    failfast_errors: AtomicU64,
    respawn_catchups: AtomicU64,
}

/// The scatter-gather front of a process-sharded deployment. See the
/// module docs for the replication and routing model.
pub struct Router {
    hier: Hierarchy,
    graph: CsrGraph,
    workers: Vec<WorkerSlot>,
    seq: Mutex<Sequencer>,
    cfg: RouterConfig,
    counters: Counters,
}

impl Router {
    /// Connect to a deployment of `workers` (worker `k`'s endpoint at index
    /// `k` — the index defines shard ownership). Builds the same stable
    /// tree hierarchy the workers built (it is weight-independent and
    /// deterministic for a given graph), so router and workers agree on
    /// `tree_of` without exchanging it.
    ///
    /// Fails if any worker is unreachable within the connect timeout or if
    /// the workers disagree on their generation — a deployment must start
    /// from a consistent cut (fresh, or all recovered from the same
    /// sequence of batches).
    pub fn connect(graph: CsrGraph, workers: &[Endpoint], cfg: RouterConfig) -> io::Result<Self> {
        assert!(!workers.is_empty(), "a deployment needs at least one worker");
        let hier = Hierarchy::build(&graph, &StlConfig::default());
        let timeout = Duration::from_millis(cfg.connect_timeout_ms);
        let mut slots = Vec::with_capacity(workers.len());
        let mut generations = Vec::with_capacity(workers.len());
        for endpoint in workers {
            let mut client = NetClient::connect_retry(endpoint, timeout)?;
            generations.push(client.stats()?.generation);
            slots.push(WorkerSlot {
                endpoint: endpoint.clone(),
                conn: Mutex::new(Some(client)),
                live: AtomicBool::new(true),
            });
        }
        let gen0 = generations[0];
        if generations.iter().any(|&g| g != gen0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("workers disagree on generation: {generations:?}"),
            ));
        }
        Ok(Self {
            hier,
            graph,
            workers: slots,
            seq: Mutex::new(Sequencer {
                cluster_gen: gen0,
                ring: VecDeque::new(),
                dedup: DedupWindow::new(cfg.dedup_window),
            }),
            cfg,
            counters: Counters {
                queries_routed: AtomicU64::new(0),
                updates_routed: AtomicU64::new(0),
                failfast_errors: AtomicU64::new(0),
                respawn_catchups: AtomicU64::new(0),
            },
        })
    }

    /// Number of workers in the deployment (live or not).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Workers currently marked live.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.live.load(Ordering::Relaxed)).count()
    }

    /// The cluster generation: how many batches have been applied through
    /// this router (on top of whatever the workers recovered at attach).
    pub fn generation(&self) -> u64 {
        self.seq.lock().unwrap().cluster_gen
    }

    /// Router-local counters.
    pub fn local_stats(&self) -> RouterStats {
        RouterStats {
            queries_routed: self.counters.queries_routed.load(Ordering::Relaxed),
            updates_routed: self.counters.updates_routed.load(Ordering::Relaxed),
            failfast_errors: self.counters.failfast_errors.load(Ordering::Relaxed),
            respawn_catchups: self.counters.respawn_catchups.load(Ordering::Relaxed),
        }
    }

    fn failfast(&self, what: &str, shard: u32, owner: usize) -> io::Error {
        self.counters.failfast_errors.fetch_add(1, Ordering::Relaxed);
        io::Error::new(
            io::ErrorKind::ConnectionAborted,
            format!("{what} requires subtree {shard}, owned by dead worker {owner}"),
        )
    }

    /// Pick the worker a `s → t` query must (or may best) go to.
    ///
    /// * same subtree on both ends → the owner, **exactly** — its deep
    ///   labels are the only exact copies; fail fast if it is down;
    /// * anything else (cross-tree, spine endpoint) is answered by spine
    ///   label prefixes, exact on every replica → prefer a live owner of an
    ///   endpoint's tree, else any live worker.
    fn route_query(&self, s: VertexId, t: VertexId) -> io::Result<usize> {
        let n = self.workers.len();
        let ts = self.hier.tree_of(s);
        let tt = self.hier.tree_of(t);
        if ts == tt && ts != SPINE_SHARD {
            let owner = ShardSet::owner_of(ts, n).expect("subtree shard has an owner");
            if !self.workers[owner].live.load(Ordering::Relaxed) {
                return Err(self.failfast("query", ts, owner));
            }
            return Ok(owner);
        }
        for shard in [ts, tt] {
            if let Some(owner) = ShardSet::owner_of(shard, n) {
                if self.workers[owner].live.load(Ordering::Relaxed) {
                    return Ok(owner);
                }
            }
        }
        self.any_live().ok_or_else(|| {
            self.counters.failfast_errors.fetch_add(1, Ordering::Relaxed);
            io::Error::new(io::ErrorKind::ConnectionAborted, "no live workers")
        })
    }

    fn any_live(&self) -> Option<usize> {
        self.workers.iter().position(|w| w.live.load(Ordering::Relaxed))
    }

    fn check_vertex(&self, v: VertexId) -> io::Result<()> {
        if u64::from(v) >= self.graph.num_vertices() as u64 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "vertex out of range"));
        }
        Ok(())
    }

    /// Run `op` on worker `idx`'s connection; an I/O-level failure marks
    /// the worker down (protocol-level errors do not).
    fn with_worker<R>(
        &self,
        idx: usize,
        op: impl FnOnce(&mut NetClient) -> io::Result<R>,
    ) -> io::Result<R> {
        let slot = &self.workers[idx];
        let mut guard = slot.conn.lock().unwrap();
        let client = guard.as_mut().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, format!("worker {idx} is down"))
        })?;
        match op(client) {
            Ok(r) => Ok(r),
            Err(e) => {
                if retryable(e.kind()) {
                    slot.live.store(false, Ordering::Relaxed);
                    *guard = None;
                }
                Err(e)
            }
        }
    }

    /// Exact distance query, routed per the ownership rules.
    pub fn query(&self, s: VertexId, t: VertexId) -> io::Result<Dist> {
        self.check_vertex(s)?;
        self.check_vertex(t)?;
        let idx = self.route_query(s, t)?;
        self.counters.queries_routed.fetch_add(1, Ordering::Relaxed);
        self.with_worker(idx, |c| c.query(s, t))
    }

    /// Exact one-to-many, routed to the one worker that is exact for the
    /// whole target set: the owner of `s`'s subtree answers everything
    /// (deep labels for same-tree targets, spine prefixes for the rest); a
    /// spine source needs only spine prefixes, so any live replica does.
    /// If the owner is down and any target shares `s`'s subtree, the
    /// request fails fast.
    pub fn one_to_many(&self, s: VertexId, targets: &[VertexId]) -> io::Result<Vec<Dist>> {
        self.check_vertex(s)?;
        for &t in targets {
            self.check_vertex(t)?;
        }
        let n = self.workers.len();
        let ts = self.hier.tree_of(s);
        let idx = match ShardSet::owner_of(ts, n) {
            Some(owner) if self.workers[owner].live.load(Ordering::Relaxed) => owner,
            Some(owner) => {
                if targets.iter().any(|&t| self.hier.tree_of(t) == ts) {
                    return Err(self.failfast("one_to_many", ts, owner));
                }
                // Same-tree deep labels unused: target trees ≠ source tree,
                // so every distance runs through the replicated spine.
                self.any_live().ok_or_else(|| {
                    self.counters.failfast_errors.fetch_add(1, Ordering::Relaxed);
                    io::Error::new(io::ErrorKind::ConnectionAborted, "no live workers")
                })?
            }
            None => self.any_live().ok_or_else(|| {
                self.counters.failfast_errors.fetch_add(1, Ordering::Relaxed);
                io::Error::new(io::ErrorKind::ConnectionAborted, "no live workers")
            })?,
        };
        self.counters.queries_routed.fetch_add(1, Ordering::Relaxed);
        self.with_worker(idx, |c| c.one_to_many(s, targets))
    }

    /// Replicate an update batch to every worker as the next cluster
    /// sequence number. Applied iff at least one replica acknowledged;
    /// rejected batches (validated once here, deterministically) consume no
    /// sequence number anywhere, keeping replicas in lockstep.
    pub fn update(&self, batch: Vec<EdgeUpdate>) -> io::Result<RemoteOutcome> {
        self.update_inner(None, batch)
    }

    /// [`Router::update`] under a client idempotency key: a key that
    /// already applied through this router is acknowledged with its
    /// original sequence number instead of re-replicated.
    pub fn update_keyed(&self, key: u64, batch: Vec<EdgeUpdate>) -> io::Result<RemoteOutcome> {
        self.update_inner(Some(key), batch)
    }

    fn update_inner(&self, key: Option<u64>, batch: Vec<EdgeUpdate>) -> io::Result<RemoteOutcome> {
        // The sequencer lock is held across the whole broadcast: batches
        // reach every worker in one global order, the invariant the whole
        // seq == generation scheme rests on.
        let mut seqr = self.seq.lock().unwrap();
        if let Some(k) = key {
            if let Some(seq) = seqr.dedup.get(k) {
                return Ok(RemoteOutcome { applied: true, generation: seq, reason: String::new() });
            }
        }
        if let Err(reason) = validate_batch(&self.graph, &batch) {
            // No seq consumed: every replica's generation is untouched.
            return Ok(RemoteOutcome { applied: false, generation: seqr.cluster_gen, reason });
        }
        let seq = seqr.cluster_gen + 1;
        self.counters.updates_routed.fetch_add(1, Ordering::Relaxed);
        let mut acked = 0usize;
        for idx in 0..self.workers.len() {
            if !self.workers[idx].live.load(Ordering::Relaxed) {
                continue;
            }
            if self.apply_to(idx, seq, &batch, &seqr.ring) {
                acked += 1;
            }
        }
        if acked == 0 {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "no worker acknowledged the batch",
            ));
        }
        seqr.cluster_gen = seq;
        seqr.ring.push_back((seq, batch));
        while seqr.ring.len() > self.cfg.catchup_ring {
            seqr.ring.pop_front();
        }
        if let Some(k) = key {
            seqr.dedup.insert(k, seq);
        }
        Ok(RemoteOutcome { applied: true, generation: seq, reason: String::new() })
    }

    /// Apply `(seq, batch)` on worker `idx`, healing an out-of-order
    /// refusal by replaying the ring tail once. Returns whether the worker
    /// acknowledged; failures mark it down.
    fn apply_to(
        &self,
        idx: usize,
        seq: u64,
        batch: &[EdgeUpdate],
        ring: &VecDeque<(u64, Vec<EdgeUpdate>)>,
    ) -> bool {
        let first = self.with_worker(idx, |c| c.apply(seq, batch));
        match first {
            Ok(outcome) => outcome.applied,
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                // The worker refused the seq (gap): replay the ring tail,
                // then retry this batch once.
                let healed = self.with_worker(idx, |c| {
                    catch_up(c, ring)?;
                    c.apply(seq, batch)
                });
                match healed {
                    Ok(outcome) if outcome.applied => {
                        self.counters.respawn_catchups.fetch_add(1, Ordering::Relaxed);
                        true
                    }
                    _ => {
                        // Beyond the ring, or refusing still: this replica
                        // cannot converge — keep it out of the deployment.
                        self.workers[idx].live.store(false, Ordering::Relaxed);
                        *self.workers[idx].conn.lock().unwrap() = None;
                        false
                    }
                }
            }
            Err(_) => false, // with_worker already marked it down
        }
    }

    /// Re-admit worker `idx` after a supervisor respawned it: reconnect,
    /// let WAL recovery finish (retrying while the socket is still coming
    /// up), replay the catch-up ring over whatever generation it recovered
    /// to, and verify it landed exactly on the cluster generation before
    /// marking it live. Queries route to it again only after this returns
    /// `Ok`.
    pub fn reattach(&self, idx: usize) -> io::Result<()> {
        let endpoint = self.workers[idx].endpoint.clone();
        let timeout = Duration::from_millis(self.cfg.connect_timeout_ms);
        let mut client = NetClient::connect_retry(&endpoint, timeout)?;
        // Hold the sequencer lock across verification: no new batch may be
        // sequenced between the ring replay and the generation check.
        let seqr = self.seq.lock().unwrap();
        let recovered = client.stats()?.generation;
        if recovered > seqr.cluster_gen {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "worker {idx} recovered to generation {recovered}, ahead of cluster {}",
                    seqr.cluster_gen
                ),
            ));
        }
        if recovered < seqr.cluster_gen {
            let oldest_needed = recovered + 1;
            if seqr.ring.front().is_some_and(|(s, _)| *s > oldest_needed) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker {idx} at generation {recovered} is beyond the catch-up ring"),
                ));
            }
            catch_up(&mut client, &seqr.ring)?;
            let caught = client.stats()?.generation;
            if caught != seqr.cluster_gen {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "worker {idx} caught up to generation {caught}, cluster is at {}",
                        seqr.cluster_gen
                    ),
                ));
            }
            self.counters.respawn_catchups.fetch_add(1, Ordering::Relaxed);
        }
        *self.workers[idx].conn.lock().unwrap() = Some(client);
        self.workers[idx].live.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Deployment-wide `STATS`: worker counters summed (generation replaced
    /// by the cluster generation), with the router's own fields appended —
    /// `[.., workers_total, workers_live, queries_routed, updates_routed,
    /// failfast_errors, respawn_catchups]`. Decodes with
    /// [`RemoteStats::from_fields`], which ignores the appended tail.
    pub fn stats_fields(&self) -> io::Result<Vec<u64>> {
        let mut sum = vec![0u64; 12];
        let mut any = false;
        for idx in 0..self.workers.len() {
            if !self.workers[idx].live.load(Ordering::Relaxed) {
                continue;
            }
            if let Ok(fields) = self.with_worker(idx, |c| c.stats_fields()) {
                for (i, f) in fields.iter().take(12).enumerate() {
                    sum[i] += f;
                }
                any = true;
            }
        }
        if !any {
            return Err(io::Error::new(io::ErrorKind::ConnectionAborted, "no live workers"));
        }
        sum[0] = self.generation();
        let local = self.local_stats();
        sum.push(self.workers.len() as u64);
        sum.push(self.live_workers() as u64);
        sum.push(local.queries_routed);
        sum.push(local.updates_routed);
        sum.push(local.failfast_errors);
        sum.push(local.respawn_catchups);
        Ok(sum)
    }

    /// [`Router::stats_fields`] decoded into the shared counter set.
    pub fn stats(&self) -> io::Result<RemoteStats> {
        RemoteStats::from_fields(&self.stats_fields()?)
    }
}

/// Replay every ring entry newer than the worker's generation, in order.
/// Entries at or below it ack idempotently through the worker's dedup
/// window, so replaying "too much" is harmless.
fn catch_up(client: &mut NetClient, ring: &VecDeque<(u64, Vec<EdgeUpdate>)>) -> io::Result<()> {
    let generation = client.stats()?.generation;
    for (seq, batch) in ring.iter().filter(|(s, _)| *s > generation) {
        let outcome = client.apply(*seq, batch)?;
        if !outcome.applied {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("catch-up batch {seq} rejected: {}", outcome.reason),
            ));
        }
    }
    Ok(())
}

// ---- protocol front ------------------------------------------------------

/// Serves the [`Router`] over the same wire protocol the workers speak, so
/// [`NetClient`] (and `stl bench-net`) cannot tell a deployment from a
/// single process. Thread-per-connection: the router fan-out itself is the
/// bottleneck, not connection handling, and the front is expected to carry
/// a handful of load generators, not thousands of sockets.
pub struct RouterServer {
    router: Arc<Router>,
    local_addr: Endpoint,
    unix_path: Option<PathBuf>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterServer {
    /// Bind `listen` (same grammar as the worker transport) and serve
    /// `router` until [`RouterServer::shutdown`].
    pub fn start(router: Arc<Router>, listen: &str) -> io::Result<Self> {
        let endpoint = Endpoint::parse(listen)?;
        let (listener, local_addr) = NetListener::bind(&endpoint)?;
        let unix_path = match &local_addr {
            Endpoint::Unix(p) => Some(p.clone()),
            Endpoint::Tcp(_) => None,
        };
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("stl-route-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok(stream) => {
                                let router = Arc::clone(&router);
                                let stop = Arc::clone(&stop);
                                let handle = std::thread::Builder::new()
                                    .name("stl-route-conn".into())
                                    .spawn(move || serve_front(&router, stream, &stop))
                                    .expect("spawn router connection thread");
                                conns.lock().unwrap().push(handle);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })
                .expect("spawn router acceptor")
        };
        Ok(Self { router, local_addr, unix_path, stop, acceptor: Some(acceptor), conns })
    }

    /// The address the front actually bound.
    pub fn local_addr(&self) -> Endpoint {
        self.local_addr.clone()
    }

    /// The routed deployment behind this front.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Stop accepting and join every connection thread.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for handle in self.conns.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.close();
    }
}

fn serve_front(router: &Router, mut stream: NetStream, stop: &AtomicBool) {
    stream.set_nodelay();
    if stream.set_read_timeout(Some(Duration::from_millis(100))).is_err() {
        return;
    }
    let idle = Some(Duration::from_secs(30));
    loop {
        let payload = match read_frame_polling(&mut stream, stop, idle) {
            Ok(p) => p,
            Err(ReadEnd::Malformed(why)) => {
                let _ = write_frame(&mut stream, &Response::Error(why.into()).encode());
                return;
            }
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Err(why) => {
                let _ = write_frame(&mut stream, &Response::Error(why.into()).encode());
                return;
            }
            Ok(Request::Query { s, t }) => reply(router.query(s, t), Response::Dist),
            Ok(Request::OneToMany { s, targets }) => {
                reply(router.one_to_many(s, &targets), Response::Many)
            }
            Ok(Request::Update(batch)) => reply(router.update(batch), outcome_response),
            Ok(Request::UpdateKeyed { key, batch }) => {
                reply(router.update_keyed(key, batch), outcome_response)
            }
            // The router *originates* APPLY; accepting one would let a
            // client desequence the deployment.
            Ok(Request::Apply { .. }) => Response::Error("router does not accept APPLY".into()),
            Ok(Request::Stats) => reply(router.stats_fields(), Response::Stats),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Fold a routed result into a wire response: fail-fast and transport
/// errors become explicit `ERROR` frames, never silent drops.
fn reply<T>(result: io::Result<T>, ok: impl FnOnce(T) -> Response) -> Response {
    match result {
        Ok(v) => ok(v),
        Err(e) => Response::Error(e.to_string()),
    }
}

fn outcome_response(outcome: RemoteOutcome) -> Response {
    Response::Batch {
        applied: outcome.applied,
        generation: outcome.generation,
        reason: outcome.reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, StlServer};
    use crate::transport::{NetConfig, NetServer};
    use crate::BatcherConfig;
    use stl_core::Stl;
    use stl_workloads::{generate, RoadNetConfig};

    /// One worker process-equivalent: a full NetServer whose ServerConfig
    /// owns worker `k`'s shard slice.
    fn spawn_worker(g: &CsrGraph, hier: &Hierarchy, k: usize, n: usize, listen: &str) -> NetServer {
        let stl = Stl::build(g, &StlConfig::default());
        let cfg = ServerConfig {
            owned_shards: Some(ShardSet::for_worker(hier, k, n)),
            ..ServerConfig::default()
        };
        let server = Arc::new(StlServer::start(g.clone(), stl, cfg));
        let net_cfg = NetConfig {
            batcher: BatcherConfig { latency_ms: 0, ..Default::default() },
            ..Default::default()
        };
        NetServer::start(server, listen, net_cfg).expect("bind worker")
    }

    /// An in-process n-worker deployment; `mk_listen(k)` picks each
    /// worker's listen spec (loopback TCP or a unix path).
    fn deployment_on(
        g: &CsrGraph,
        n: usize,
        mk_listen: impl Fn(usize) -> String,
    ) -> (Vec<NetServer>, Router) {
        let hier = Hierarchy::build(g, &StlConfig::default());
        let mut nets = Vec::new();
        let mut endpoints = Vec::new();
        for k in 0..n {
            let net = spawn_worker(g, &hier, k, n, &mk_listen(k));
            endpoints.push(net.local_addr());
            nets.push(net);
        }
        let router = Router::connect(g.clone(), &endpoints, RouterConfig::default()).unwrap();
        (nets, router)
    }

    fn deployment(g: &CsrGraph, n: usize) -> (Vec<NetServer>, Router) {
        deployment_on(g, n, |_| "127.0.0.1:0".into())
    }

    fn oracle(g: &CsrGraph, s: VertexId, t: VertexId) -> Dist {
        stl_pathfinding::dijkstra::distance(g, s, t)
    }

    #[test]
    fn routed_queries_match_the_oracle_after_updates() {
        let g = generate(&RoadNetConfig::sized(180, 7));
        let (nets, router) = deployment(&g, 2);

        // A few update rounds touching many trees, each broadcast.
        let mut live = g.clone();
        for (round, (a, b, w)) in g.edges().take(6).enumerate() {
            let nw = if round % 2 == 0 { w * 3 } else { (w / 2).max(1) };
            let out = router.update(vec![EdgeUpdate::new(a, b, nw)]).unwrap();
            assert!(out.applied, "round {round}: {}", out.reason);
            assert_eq!(out.generation, round as u64 + 1, "cluster seq must be dense");
            live.set_weight(a, b, nw).unwrap();
        }
        assert_eq!(router.generation(), 6);

        // Every pair class (same-tree, cross-tree, spine) against Dijkstra.
        let n = g.num_vertices() as VertexId;
        for s in (0..n).step_by(13) {
            for t in (0..n).step_by(17) {
                assert_eq!(router.query(s, t).unwrap(), oracle(&live, s, t), "query({s},{t})");
            }
        }
        // One-to-many through the same routing.
        let targets: Vec<VertexId> = (0..n).step_by(11).collect();
        let many = router.one_to_many(3, &targets).unwrap();
        for (i, &t) in targets.iter().enumerate() {
            assert_eq!(many[i], oracle(&live, 3, t), "one_to_many(3 -> {t})");
        }

        let fields = router.stats_fields().unwrap();
        assert_eq!(fields[0], 6, "aggregated generation is the cluster generation");
        assert_eq!(fields[12], 2, "workers_total");
        assert_eq!(fields[13], 2, "workers_live");
        assert!(fields[14] > 0, "queries_routed");
        assert_eq!(fields[15], 6, "updates_routed");
        drop(nets);
    }

    #[test]
    fn dead_worker_fails_fast_and_reattaches_through_catchup() {
        let g = generate(&RoadNetConfig::sized(150, 5));
        let hier = Hierarchy::build(&g, &StlConfig::default());
        // Unix sockets: the "respawned" worker can rebind the exact same
        // endpoint, as a supervisor-restarted process would.
        let dir = std::env::temp_dir().join(format!("stl-router-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |k: usize| format!("unix:{}", dir.join(format!("w{k}.sock")).display());
        let (mut nets, router) = deployment_on(&g, 2, mk);

        // Kill worker 1 (simulated: shut its transport down).
        let dead = nets.remove(1);
        dead.shutdown();
        // The router notices on the next I/O touching it.
        let _ = router
            .update(g.edges().take(1).map(|(a, b, w)| EdgeUpdate::new(a, b, w * 2)).collect());
        assert_eq!(router.live_workers(), 1);

        // Same-tree queries inside worker-1 trees fail fast; everything
        // else keeps answering.
        let n = g.num_vertices() as VertexId;
        let mut dead_pair = None;
        let mut live_pair = None;
        'outer: for s in 0..n {
            for t in 0..n {
                let ts = hier.tree_of(s);
                if ts == hier.tree_of(t) && ts != SPINE_SHARD {
                    match ShardSet::owner_of(ts, 2) {
                        Some(1) => dead_pair = dead_pair.or(Some((s, t))),
                        Some(0) => live_pair = live_pair.or(Some((s, t))),
                        _ => {}
                    }
                    if dead_pair.is_some() && live_pair.is_some() {
                        break 'outer;
                    }
                }
            }
        }
        let (ds, dt) = dead_pair.expect("some tree owned by worker 1");
        let err = router.query(ds, dt).unwrap_err();
        assert!(err.to_string().contains("dead worker 1"), "got: {err}");
        let (ls, lt) = live_pair.expect("some tree owned by worker 0");
        assert_eq!(router.query(ls, lt).unwrap(), oracle(&g_after(&g, &router), ls, lt));
        assert!(router.local_stats().failfast_errors >= 1);

        // Updates keep flowing on the surviving replica.
        let (a, b, w) = g.edges().nth(3).unwrap();
        assert!(router.update(vec![EdgeUpdate::new(a, b, w + 9)]).unwrap().applied);

        // "Respawn": a fresh worker process at generation 0 on the same
        // endpoint; reattach must replay the ring to the cluster
        // generation before marking it live.
        let listen = router.workers[1].endpoint.to_string();
        let net = spawn_worker(&g, &hier, 1, 2, &listen);
        router.reattach(1).expect("reattach after respawn");
        assert_eq!(router.live_workers(), 2);
        assert!(router.local_stats().respawn_catchups >= 1, "ring replay must have run");

        // The reattached worker is exact again for its own trees.
        let live_g = g_after(&g, &router);
        assert_eq!(router.query(ds, dt).unwrap(), oracle(&live_g, ds, dt));
        nets.push(net);
        drop(nets);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Rebuild the current graph by replaying the router's ring over `g` —
    /// test-side bookkeeping for oracle checks.
    fn g_after(g: &CsrGraph, router: &Router) -> CsrGraph {
        let mut live = g.clone();
        for (_, batch) in router.seq.lock().unwrap().ring.iter() {
            for u in batch {
                live.set_weight(u.a, u.b, u.new_weight).unwrap();
            }
        }
        live
    }

    #[test]
    fn router_front_speaks_the_worker_protocol() {
        let g = generate(&RoadNetConfig::sized(120, 3));
        let (nets, router) = deployment(&g, 2);
        let front = RouterServer::start(Arc::new(router), "127.0.0.1:0").unwrap();
        let mut client = NetClient::connect(&front.local_addr()).unwrap();

        let (a, b, w) = g.edges().next().unwrap();
        let out = client.update(&[EdgeUpdate::new(a, b, w * 2)]).unwrap();
        assert!(out.applied);
        assert_eq!(out.generation, 1);
        let mut live = g.clone();
        live.set_weight(a, b, w * 2).unwrap();
        assert_eq!(client.query(0, 60).unwrap(), oracle(&live, 0, 60));
        assert_eq!(
            client.one_to_many(0, &[10, 20, 30]).unwrap(),
            vec![oracle(&live, 0, 10), oracle(&live, 0, 20), oracle(&live, 0, 30)]
        );

        // Keyed dedup at the router: same key acks the original seq.
        let k1 = client.update_keyed(42, &[EdgeUpdate::new(a, b, w * 4)]).unwrap();
        assert!(k1.applied);
        let k2 = client.update_keyed(42, &[EdgeUpdate::new(a, b, w * 4)]).unwrap();
        assert!(k2.applied);
        assert_eq!(k2.generation, k1.generation, "retry acks the original seq");

        // APPLY from a client is refused.
        let err = client.apply(99, &[EdgeUpdate::new(a, b, w)]).unwrap_err();
        assert!(err.to_string().contains("does not accept APPLY"), "got: {err}");

        // Aggregated stats flow through the same STATS opcode, tail intact.
        let fields = client.stats_fields().unwrap();
        assert!(fields.len() >= 18, "router must append its fields");
        assert_eq!(fields[12], 2, "workers_total");
        let decoded = RemoteStats::from_fields(&fields).unwrap();
        assert_eq!(decoded.generation, 2);

        // A rejected batch consumes no cluster generation.
        let out = client.update(&[EdgeUpdate::new(0, 0, 5)]).unwrap();
        assert!(!out.applied);
        assert_eq!(front.router().generation(), 2);
        front.shutdown();
        drop(nets);
    }
}
