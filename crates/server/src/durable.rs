//! Checkpointing, recovery, and the idempotency dedup window.
//!
//! A durable server keeps two files in its `--state-dir`:
//!
//! * **`checkpoint`** — a full dump of the served world: graph edge weights,
//!   the STL index (via `stl_core::persist`), the published generation, and
//!   the idempotency dedup window. Written with a temp-file + atomic-rename
//!   protocol, so the file on disk is always a *complete* checkpoint — the
//!   old one or the new one, never a torn hybrid.
//! * **`wal`** — the write-ahead log of accepted batches since that
//!   checkpoint (see [`crate::wal`]).
//!
//! ## Checkpoint lifecycle
//!
//! The writer checkpoints on the existing quiescence trigger (the same
//! streak that drives epoch compaction) and on clean shutdown: dump state,
//! fsync, rename into place, fsync the directory, then atomically reset the
//! WAL. A crash at *any* instant leaves a recoverable pair: before the
//! rename, recovery uses the old checkpoint plus the full WAL; between the
//! rename and the WAL reset, replay skips every record whose sequence
//! number the new checkpoint already covers.
//!
//! ## Recovery
//!
//! `recover` loads the checkpoint (if any) over the freshly built/loaded
//! world, replays the WAL tail through the normal sharded-repair path, and
//! truncates the log at the first torn or corrupt record. The result is
//! bit-identical to a process that never crashed: labels store canonical
//! subgraph distances, so replaying the same accepted batches reproduces
//! the same arena bytes (`tests/crash_recovery.rs` pins this).

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::PathBuf;

use stl_core::{failpoint, DynamicDistanceIndex, EnginePool};
use stl_graph::CsrGraph;

use crate::server::{validate_batch, ServerConfig};
use crate::wal::{self, crc32, get_u64, put_u64, sync_parent_dir, FsyncPolicy, WalWriter};

const CKPT_MAGIC: &[u8; 8] = b"STLCKPT1";

/// Where the durability layer keeps its state and how hard it flushes.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `checkpoint` and `wal`. Created if absent.
    pub state_dir: PathBuf,
    /// When WAL appends reach stable storage (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
}

impl DurabilityConfig {
    /// Durability rooted at `state_dir` with [`FsyncPolicy::Always`].
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        Self { state_dir: state_dir.into(), fsync: FsyncPolicy::Always }
    }

    /// Path of the checkpoint file.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.state_dir.join("checkpoint")
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.state_dir.join("wal")
    }
}

/// What `recover` found and did, reported once at boot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation restored from the checkpoint (`None`: no checkpoint, the
    /// server booted from the caller's freshly built/loaded world).
    pub checkpoint_generation: Option<u64>,
    /// WAL records replayed through the repair path (records the checkpoint
    /// already covered are skipped, not replayed).
    pub wal_records_replayed: u64,
    /// WAL records skipped because their sequence number was at or below
    /// the checkpoint's generation (crash between checkpoint rename and WAL
    /// reset leaves such records behind; they are redundant, not lost).
    pub wal_records_skipped: u64,
    /// Whether a torn/corrupt WAL tail was found and truncated.
    pub wal_torn_tail: bool,
    /// The generation the server resumes serving from.
    pub generation: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.checkpoint_generation {
            Some(g) => write!(f, "checkpoint at generation {g}")?,
            None => write!(f, "no checkpoint")?,
        }
        write!(
            f,
            ", replayed {} wal record(s) ({} skipped){} -> generation {}",
            self.wal_records_replayed,
            self.wal_records_skipped,
            if self.wal_torn_tail { ", torn tail truncated" } else { "" },
            self.generation
        )
    }
}

/// Bounded map of idempotency keys to the generation that applied them.
///
/// A client retrying an update (after a timeout, a dropped connection, or a
/// writer restart) resubmits the same key; a hit here means the batch is
/// already published, so the retry is acknowledged without re-applying —
/// the guarantee that makes retries safe. The window is bounded (eviction
/// is FIFO by first insertion) because keys, like rejection reasons, must
/// not grow server memory without bound; a key older than the window's
/// capacity of distinct later keys can in principle re-apply, so clients
/// should retry promptly, not days later.
#[derive(Debug)]
pub struct DedupWindow {
    map: HashMap<u64, u64>,
    order: VecDeque<u64>,
    cap: usize,
}

impl DedupWindow {
    /// Window retaining at most `cap` keys (`cap = 0` disables dedup).
    pub fn new(cap: usize) -> Self {
        Self { map: HashMap::new(), order: VecDeque::new(), cap }
    }

    /// The generation that applied `key`, if it is still in the window.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.map.get(&key).copied()
    }

    /// Record that `key` was applied by generation `seq`. Returns how many
    /// old keys were evicted to make room.
    pub fn insert(&mut self, key: u64, seq: u64) -> u64 {
        if self.cap == 0 {
            return 0;
        }
        if self.map.insert(key, seq).is_none() {
            self.order.push_back(key);
        }
        let mut evicted = 0;
        while self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                evicted += 1;
            }
        }
        evicted
    }

    /// Number of keys currently retained.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the window holds no keys.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `(key, generation)` pairs, oldest first — the checkpoint serializes
    /// these so the window survives restarts.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.order.iter().map(|k| (*k, self.map[k]))
    }
}

/// State restored from a checkpoint file.
///
/// `Debug` is hand-rolled (index elided) so it needs no bound on `I`.
pub(crate) struct Checkpoint<I> {
    pub generation: u64,
    pub stl: I,
    /// Dedup entries oldest-first.
    pub dedup: Vec<(u64, u64)>,
}

impl<I> std::fmt::Debug for Checkpoint<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("generation", &self.generation)
            .field("dedup_entries", &self.dedup.len())
            .finish_non_exhaustive()
    }
}

/// Write a checkpoint of the served world into `cfg.state_dir`, atomically.
///
/// The weights of `graph` are stored in `graph.edges()` iteration order —
/// deterministic for a given topology — and re-applied positionally on
/// load, so only the weights travel, never the topology (road-network
/// structure is fixed; the graph file remains the topology's source of
/// truth). The `checkpoint-rename` failpoint fires between writing the temp
/// file and renaming it into place.
pub(crate) fn write_checkpoint<I: DynamicDistanceIndex>(
    cfg: &DurabilityConfig,
    graph: &CsrGraph,
    stl: &I,
    generation: u64,
    dedup: &DedupWindow,
) -> io::Result<u64> {
    let mut payload = Vec::new();
    put_u64(&mut payload, generation);
    let weights: Vec<u32> = graph.edges().map(|(_, _, w)| w).collect();
    put_u64(&mut payload, weights.len() as u64);
    for w in weights {
        wal::put_u32(&mut payload, w);
    }
    put_u64(&mut payload, dedup.len() as u64);
    for (key, seq) in dedup.entries() {
        put_u64(&mut payload, key);
        put_u64(&mut payload, seq);
    }
    let index = stl.to_bytes();
    put_u64(&mut payload, index.len() as u64);
    payload.extend_from_slice(&index);

    let path = cfg.checkpoint_path();
    let tmp = path.with_extension("tmp");
    let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
    f.write_all(CKPT_MAGIC)?;
    f.write_all(&crc32(&payload).to_le_bytes())?;
    f.write_all(&payload)?;
    f.sync_all()?;
    drop(f);
    failpoint::fire("checkpoint-rename");
    std::fs::rename(&tmp, &path)?;
    sync_parent_dir(&path)?;
    Ok(8 + 4 + payload.len() as u64)
}

/// Load the checkpoint from `cfg.state_dir`, applying its weights onto
/// `graph` in place. `Ok(None)` when no checkpoint exists. A checkpoint
/// that fails its magic/CRC/shape checks is an error: the WAL was reset
/// when it was written, so its contents cannot be reconstructed from
/// anywhere else — silently booting from genesis would resurrect stale
/// distances.
pub(crate) fn load_checkpoint<I: DynamicDistanceIndex>(
    cfg: &DurabilityConfig,
    graph: &mut CsrGraph,
) -> io::Result<Option<Checkpoint<I>>> {
    let mut bytes = Vec::new();
    match File::open(cfg.checkpoint_path()) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    let corrupt = |what: &str| {
        io::Error::new(io::ErrorKind::InvalidData, format!("corrupt checkpoint: {what}"))
    };
    if bytes.len() < 12 || &bytes[..8] != CKPT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let payload = &bytes[12..];
    if crc32(payload) != crc {
        return Err(corrupt("crc mismatch"));
    }
    let mut p = payload;
    let generation = get_u64(&mut p).ok_or_else(|| corrupt("truncated header"))?;
    let nweights = get_u64(&mut p).ok_or_else(|| corrupt("truncated weights"))? as usize;
    if p.len() / 4 < nweights {
        return Err(corrupt("short weight array"));
    }
    let mut weights = Vec::with_capacity(nweights);
    for _ in 0..nweights {
        weights.push(wal::get_u32(&mut p).unwrap());
    }
    let ndedup = get_u64(&mut p).ok_or_else(|| corrupt("truncated dedup"))? as usize;
    if p.len() / 16 < ndedup {
        return Err(corrupt("short dedup array"));
    }
    let mut dedup = Vec::with_capacity(ndedup);
    for _ in 0..ndedup {
        let key = get_u64(&mut p).unwrap();
        let seq = get_u64(&mut p).unwrap();
        dedup.push((key, seq));
    }
    let nindex = get_u64(&mut p).ok_or_else(|| corrupt("truncated index length"))? as usize;
    if p.len() != nindex {
        return Err(corrupt("index length mismatch"));
    }
    let stl = I::from_bytes(p).map_err(|e| corrupt(&e))?;
    // Weights are positional over the deterministic edge order; a count
    // mismatch means the checkpoint belongs to a different topology.
    let edges: Vec<_> = graph.edges().collect();
    if edges.len() != weights.len() {
        return Err(corrupt("edge count does not match the loaded graph"));
    }
    for ((a, b, _), w) in edges.into_iter().zip(weights) {
        graph.set_weight(a, b, w).map_err(|e| corrupt(&e.to_string()))?;
    }
    Ok(Some(Checkpoint { generation, stl, dedup }))
}

/// Everything [`recover`] hands back to the server constructor.
pub(crate) struct Recovered<I> {
    pub graph: CsrGraph,
    pub stl: I,
    pub generation: u64,
    pub dedup: DedupWindow,
    pub wal: WalWriter,
    pub report: RecoveryReport,
}

/// Boot-time recovery: overlay the checkpoint, replay the WAL tail through
/// the normal sharded-repair path, truncate crash debris, and open the WAL
/// for appending.
///
/// `graph`/`stl` are the freshly built or loaded world (generation 0) the
/// durable state overlays. Replay re-validates every record before
/// applying it — a record that no longer validates (possible only if the
/// operator swapped the graph file for a different topology) is an error,
/// not a panic.
pub(crate) fn recover<I: DynamicDistanceIndex>(
    cfg: &DurabilityConfig,
    server_cfg: &ServerConfig,
    mut graph: CsrGraph,
    mut stl: I,
) -> io::Result<Recovered<I>> {
    std::fs::create_dir_all(&cfg.state_dir)?;
    let mut report = RecoveryReport::default();
    let mut dedup = DedupWindow::new(server_cfg.dedup_window);
    let mut generation = 0u64;
    if let Some(ckpt) = load_checkpoint(cfg, &mut graph)? {
        generation = ckpt.generation;
        stl = ckpt.stl;
        for (key, seq) in ckpt.dedup {
            dedup.insert(key, seq);
        }
        report.checkpoint_generation = Some(generation);
    }
    let replayed = wal::replay(&cfg.wal_path())?;
    report.wal_torn_tail = replayed.torn;
    let mut pool = EnginePool::new();
    for rec in replayed.records {
        // A record the checkpoint already covers (crash between the
        // checkpoint rename and the WAL reset) is redundant — skip it.
        if rec.seq <= generation {
            report.wal_records_skipped += 1;
            continue;
        }
        validate_batch(&graph, &rec.updates).map_err(|why| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wal record {} no longer validates against the graph: {why}", rec.seq),
            )
        })?;
        // Replay through the same ownership filter the serving loop uses: a
        // respawned shard worker repairs only the spine and its owned
        // subtrees, exactly reproducing its pre-crash serving state.
        stl.apply_batch(
            &mut graph,
            &rec.updates,
            server_cfg.algo,
            &mut pool,
            server_cfg.repair_threads,
            server_cfg.owned_shards.as_ref(),
        );
        generation = rec.seq;
        for key in rec.keys {
            dedup.insert(key, rec.seq);
        }
        report.wal_records_replayed += 1;
    }
    // Replay wrote through the COW stores; drain the accounting so the
    // serving loop's first epoch doesn't inherit boot-time copies.
    stl.take_cow_stats();
    graph.take_cow_stats();
    report.generation = generation;
    let wal = WalWriter::open(&cfg.wal_path(), cfg.fsync, replayed.valid_len)?;
    Ok(Recovered { graph, stl, generation, dedup, wal, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use stl_core::{persist, Stl, StlConfig};
    use stl_graph::EdgeUpdate;
    use stl_workloads::{generate, RoadNetConfig};

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            static N: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "stl-durable-{tag}-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }
        fn cfg(&self) -> DurabilityConfig {
            DurabilityConfig::new(&self.0)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn world() -> (CsrGraph, Stl) {
        let g = generate(&RoadNetConfig::sized(120, 19));
        let stl = Stl::build(&g, &StlConfig::default());
        (g, stl)
    }

    #[test]
    fn checkpoint_roundtrip_restores_weights_index_and_dedup() {
        let s = Scratch::new("roundtrip");
        let (mut g, mut stl) = world();
        let mut pool = EnginePool::new();
        let edges: Vec<_> = g.edges().take(4).collect();
        for &(a, b, w) in &edges {
            stl.apply_batch_sharded(
                &mut g,
                &[EdgeUpdate::new(a, b, w * 3)],
                stl_core::Maintenance::ParetoSearch,
                &mut pool,
                1,
            );
        }
        let mut dedup = DedupWindow::new(16);
        dedup.insert(11, 3);
        dedup.insert(22, 4);
        write_checkpoint(&s.cfg(), &g, &stl, 4, &dedup).unwrap();

        let (mut fresh_g, _) = world();
        let ckpt = load_checkpoint(&s.cfg(), &mut fresh_g).unwrap().unwrap();
        assert_eq!(ckpt.generation, 4);
        assert_eq!(ckpt.dedup, vec![(11, 3), (22, 4)]);
        // Weights restored positionally onto the fresh topology.
        for ((a1, b1, w1), (a2, b2, w2)) in g.edges().zip(fresh_g.edges()) {
            assert_eq!((a1, b1, w1), (a2, b2, w2));
        }
        // The restored index is bit-identical to the checkpointed one.
        assert_eq!(persist::save(&stl), persist::save(&ckpt.stl));
        stl_core::verify::check_all(&ckpt.stl, &fresh_g).unwrap();
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let s = Scratch::new("missing");
        let (mut g, _) = world();
        assert!(load_checkpoint::<Stl>(&s.cfg(), &mut g).unwrap().is_none());
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_silent_genesis() {
        let s = Scratch::new("corrupt");
        let (mut g, stl) = world();
        write_checkpoint(&s.cfg(), &g, &stl, 1, &DedupWindow::new(4)).unwrap();
        let path = s.cfg().checkpoint_path();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_checkpoint::<Stl>(&s.cfg(), &mut g).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("crc mismatch"), "got: {err}");
        // Bad magic likewise.
        std::fs::write(&path, b"NOTACKPT----------------").unwrap();
        let err = load_checkpoint::<Stl>(&s.cfg(), &mut g).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "got: {err}");
    }

    #[test]
    fn recover_replays_only_past_the_checkpoint() {
        let s = Scratch::new("skip");
        let (g0, stl0) = world();
        let (mut g, mut stl) = (g0.clone(), stl0.clone());
        let mut pool = EnginePool::new();
        let edges: Vec<_> = g.edges().step_by(3).take(3).collect();
        let cfg = s.cfg();
        let scfg = ServerConfig::default();
        let mut wal = WalWriter::open(&cfg.wal_path(), FsyncPolicy::Always, 0).unwrap();
        // Apply+log seqs 1..=3, checkpoint after seq 2, but "crash" before
        // the WAL reset: records 1 and 2 linger and must be skipped.
        for (i, &(a, b, w)) in edges.iter().enumerate() {
            let seq = i as u64 + 1;
            let batch = vec![EdgeUpdate::new(a, b, w + 7)];
            wal.append(seq, &[100 + seq], &batch).unwrap();
            wal.sync().unwrap();
            stl.apply_batch_sharded(&mut g, &batch, scfg.algo, &mut pool, 1);
            if seq == 2 {
                write_checkpoint(&cfg, &g, &stl, 2, &DedupWindow::new(64)).unwrap();
            }
        }
        let rec = recover(&cfg, &scfg, g0.clone(), stl0.clone()).unwrap();
        assert_eq!(rec.report.checkpoint_generation, Some(2));
        assert_eq!(rec.report.wal_records_skipped, 2);
        assert_eq!(rec.report.wal_records_replayed, 1);
        assert!(!rec.report.wal_torn_tail);
        assert_eq!(rec.generation, 3);
        // Replayed keys land in the dedup window alongside nothing else
        // (the checkpoint's window was empty).
        assert_eq!(rec.dedup.get(103), Some(3));
        assert_eq!(rec.dedup.get(101), None, "covered records must not re-insert keys");
        // Recovered state is bit-identical to the in-memory twin.
        assert_eq!(persist::save(&rec.stl), persist::save(&stl));
        let report_text = rec.report.to_string();
        assert!(report_text.contains("checkpoint at generation 2"), "got: {report_text}");
    }

    #[test]
    fn recover_without_any_state_is_generation_zero() {
        let s = Scratch::new("genesis");
        let (g, stl) = world();
        let rec = recover(&s.cfg(), &ServerConfig::default(), g, stl).unwrap();
        assert_eq!(rec.generation, 0);
        assert_eq!(rec.report.checkpoint_generation, None);
        assert_eq!(rec.report.wal_records_replayed, 0);
        assert!(rec.wal.is_empty());
    }

    #[test]
    fn dedup_window_evicts_fifo_and_counts() {
        let mut w = DedupWindow::new(3);
        assert_eq!(w.insert(1, 10), 0);
        assert_eq!(w.insert(2, 11), 0);
        assert_eq!(w.insert(3, 12), 0);
        assert_eq!(w.insert(4, 13), 1); // evicts key 1
        assert_eq!(w.get(1), None);
        assert_eq!(w.get(4), Some(13));
        assert_eq!(w.len(), 3);
        // Re-inserting an existing key refreshes its seq without growing.
        assert_eq!(w.insert(3, 20), 0);
        assert_eq!(w.get(3), Some(20));
        assert_eq!(w.len(), 3);
        // Capacity 0 disables retention entirely.
        let mut off = DedupWindow::new(0);
        assert_eq!(off.insert(9, 1), 0);
        assert_eq!(off.get(9), None);
        assert!(off.is_empty());
    }
}
