//! Adaptive update batching between request producers and the writer.
//!
//! The paper's batch experiments (§7) quantify the trade-off this module
//! makes user-facing: larger batches amortise label repair (one search pass,
//! one publish, one spine refresh for many updates) at the cost of update
//! visibility latency. The [`AdaptiveBatcher`] sits between any number of
//! producers — the TCP transport's reader pool, or in-process callers — and
//! [`StlServer::submit`]: it accumulates incoming update requests until
//! either a **latency budget** ([`BatcherConfig::latency_ms`]) or a **size
//! budget** ([`BatcherConfig::max_updates`]) trips, then submits everything
//! accumulated as one writer batch and fans the resulting [`BatchOutcome`]
//! back to every contributing request.
//!
//! Two properties keep bad input and overload survivable:
//!
//! * **Pre-validation.** Every request is validated against the (immutable)
//!   topology before it may join a merged batch
//!   ([`crate::server::validate_batch`]); an invalid request is answered
//!   [`BatchOutcome::Rejected`] on its own and can never poison the merged
//!   batch of innocent co-submitters. Since validation is purely structural
//!   and structure never changes, the pre-check is exact — the writer's own
//!   validation (the backstop for direct `submit` callers) never fires for
//!   batched traffic.
//! * **Admission control.** At most [`BatcherConfig::max_queued`] updates
//!   may be pending; beyond that, new requests are shed immediately with an
//!   explicit `Rejected("overloaded: …")` instead of growing the queue
//!   without bound.
//!
//! A third makes client *retries* survivable: **idempotency keys**
//! ([`AdaptiveBatcher::submit_keyed`]). A keyed request that already applied
//! is answered from the server's dedup window without re-applying, and a
//! keyed request whose twin is still pending *joins* the pending request's
//! outcome slot instead of enqueueing a duplicate — so a client that times
//! out and retries (or reconnects after a writer restart) can never
//! double-apply its update.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stl_core::{DynamicDistanceIndex, Stl};
use stl_graph::{CsrGraph, EdgeUpdate};

use crate::server::{validate_batch, BatchOutcome, StlServer};

/// Batching knobs (see the module docs for the trade-off they control).
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Latency budget in milliseconds: a pending batch is flushed once its
    /// oldest update has waited this long. `0` flushes as soon as the
    /// flusher can grab the pending set (minimal added latency, minimal
    /// amortisation).
    pub latency_ms: u64,
    /// Size budget: a pending batch is flushed as soon as it holds at least
    /// this many updates, regardless of age.
    pub max_updates: usize,
    /// Admission bound: requests arriving while this many updates are
    /// already pending are shed with an explicit rejection instead of
    /// queued. Bounds both memory and worst-case flush size.
    pub max_queued: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self { latency_ms: 10, max_updates: 256, max_queued: 4096 }
    }
}

/// Counters of one batcher's lifetime, all monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Merged batches handed to the writer.
    pub batches_submitted: u64,
    /// Client requests folded into those batches (≥ `batches_submitted`
    /// whenever coalescing happened).
    pub requests_coalesced: u64,
    /// Requests shed by admission control (queue full).
    pub requests_shed: u64,
    /// Requests rejected by pre-validation (bad edge, INF weight, …).
    pub requests_rejected: u64,
    /// Keyed retries that joined an already-pending request with the same
    /// idempotency key instead of enqueueing a duplicate (dedup-window hits
    /// for already-*applied* keys are counted in
    /// [`crate::ServerStats::dedup_hits`] instead).
    pub requests_joined: u64,
    /// Flushes tripped by the size budget.
    pub flushes_by_size: u64,
    /// Flushes tripped by the latency budget.
    pub flushes_by_timer: u64,
}

#[derive(Debug, Default)]
struct OutcomeSlot {
    outcome: Mutex<Option<BatchOutcome>>,
    ready: Condvar,
}

impl OutcomeSlot {
    fn resolve(&self, outcome: BatchOutcome) {
        *self.outcome.lock().unwrap() = Some(outcome);
        self.ready.notify_all();
    }
}

/// Handle to one enqueued update request; [`PendingUpdate::wait`] blocks
/// until the request's merged batch has been applied (or the request was
/// rejected/shed up front) and returns the outcome.
#[derive(Debug)]
pub struct PendingUpdate(Arc<OutcomeSlot>);

impl PendingUpdate {
    fn resolved(outcome: BatchOutcome) -> Self {
        let slot = OutcomeSlot::default();
        *slot.outcome.lock().unwrap() = Some(outcome);
        Self(Arc::new(slot))
    }

    /// Block until the outcome is known. Idempotent — repeated calls return
    /// the same outcome.
    pub fn wait(&self) -> BatchOutcome {
        let guard = self.0.outcome.lock().unwrap();
        let guard = self.0.ready.wait_while(guard, |o| o.is_none()).unwrap();
        guard.clone().expect("wait_while guarantees Some")
    }
}

struct FlushState {
    pending: Vec<EdgeUpdate>,
    /// One entry per enqueued request: its idempotency key (if any) and the
    /// slot its outcome resolves into.
    waiters: Vec<(Option<u64>, Arc<OutcomeSlot>)>,
    /// Keys currently pending or in a submitted-but-unresolved batch; a
    /// retry carrying one of these joins the existing slot.
    in_flight: HashMap<u64, Arc<OutcomeSlot>>,
    opened_at: Option<Instant>,
    stop: bool,
}

struct BatcherShared<I: DynamicDistanceIndex> {
    server: Arc<StlServer<I>>,
    /// Topology reference for pre-validation. Weights are irrelevant to
    /// validation and structure is immutable, so a COW clone taken at
    /// construction stays accurate forever.
    graph: CsrGraph,
    cfg: BatcherConfig,
    state: Mutex<FlushState>,
    kick: Condvar,
    batches_submitted: AtomicU64,
    requests_coalesced: AtomicU64,
    requests_shed: AtomicU64,
    requests_rejected: AtomicU64,
    requests_joined: AtomicU64,
    flushes_by_size: AtomicU64,
    flushes_by_timer: AtomicU64,
}

/// The accumulating middleman between producers and the writer (see the
/// module docs). Cheap to share behind an `Arc`; submission is `&self`.
pub struct AdaptiveBatcher<I: DynamicDistanceIndex = Stl> {
    shared: Arc<BatcherShared<I>>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl<I: DynamicDistanceIndex> AdaptiveBatcher<I> {
    /// Start the flusher thread in front of `server`.
    pub fn start(server: Arc<StlServer<I>>, cfg: BatcherConfig) -> Self {
        let graph = server.snapshot().graph().clone();
        let shared = Arc::new(BatcherShared {
            server,
            graph,
            cfg,
            state: Mutex::new(FlushState {
                pending: Vec::new(),
                waiters: Vec::new(),
                in_flight: HashMap::new(),
                opened_at: None,
                stop: false,
            }),
            kick: Condvar::new(),
            batches_submitted: AtomicU64::new(0),
            requests_coalesced: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            requests_rejected: AtomicU64::new(0),
            requests_joined: AtomicU64::new(0),
            flushes_by_size: AtomicU64::new(0),
            flushes_by_timer: AtomicU64::new(0),
        });
        let flusher_shared = Arc::clone(&shared);
        let flusher = std::thread::Builder::new()
            .name("stl-batcher".into())
            .spawn(move || flusher_loop(&flusher_shared))
            .expect("spawn stl-batcher thread");
        Self { shared, flusher: Mutex::new(Some(flusher)) }
    }

    /// Enqueue one update request.
    ///
    /// Returns immediately with a [`PendingUpdate`]; call
    /// [`PendingUpdate::wait`] for the outcome. Invalid requests and
    /// requests shed by admission control come back already resolved to
    /// [`BatchOutcome::Rejected`] without touching the queue.
    pub fn submit(&self, updates: Vec<EdgeUpdate>) -> PendingUpdate {
        self.submit_keyed(None, updates)
    }

    /// [`AdaptiveBatcher::submit`] with an optional client-supplied
    /// **idempotency key**, the safe-retry contract:
    ///
    /// * If `key` already **applied** (it is in the server's dedup window),
    ///   the request resolves immediately to the original
    ///   `Applied { seq }` — nothing is re-applied.
    /// * If a request with `key` is still **pending or in flight**, this
    ///   request joins its outcome slot — both callers see the one outcome
    ///   of the one enqueued copy.
    /// * Otherwise the request enqueues normally and its key travels with
    ///   the merged batch into the writer (and, on a durable server, into
    ///   the WAL record and checkpoints).
    ///
    /// Keys are client-chosen `u64`s; callers must make them unique per
    /// logical update (a random 64-bit value per request is fine).
    pub fn submit_keyed(&self, key: Option<u64>, updates: Vec<EdgeUpdate>) -> PendingUpdate {
        if let Err(reason) = validate_batch(&self.shared.graph, &updates) {
            self.shared.requests_rejected.fetch_add(1, Ordering::Relaxed);
            self.shared.server.note_rejected_batch();
            return PendingUpdate::resolved(BatchOutcome::Rejected(reason));
        }
        if let Some(k) = key {
            if let Some(seq) = self.shared.server.dedup_lookup(k) {
                return PendingUpdate::resolved(BatchOutcome::Applied { seq });
            }
        }
        let mut st = self.shared.state.lock().unwrap();
        if st.stop {
            return PendingUpdate::resolved(BatchOutcome::Rejected(
                "batcher shut down before the request was accepted".into(),
            ));
        }
        if let Some(slot) = key.and_then(|k| st.in_flight.get(&k).cloned()) {
            drop(st);
            self.shared.requests_joined.fetch_add(1, Ordering::Relaxed);
            return PendingUpdate(slot);
        }
        if st.pending.len() + updates.len() > self.shared.cfg.max_queued {
            let queued = st.pending.len();
            drop(st);
            self.shared.requests_shed.fetch_add(1, Ordering::Relaxed);
            return PendingUpdate::resolved(BatchOutcome::Rejected(format!(
                "overloaded: {queued} updates queued (admission limit {})",
                self.shared.cfg.max_queued
            )));
        }
        if st.pending.is_empty() {
            st.opened_at = Some(Instant::now());
        }
        st.pending.extend(updates);
        let slot = Arc::new(OutcomeSlot::default());
        if let Some(k) = key {
            st.in_flight.insert(k, Arc::clone(&slot));
        }
        st.waiters.push((key, Arc::clone(&slot)));
        drop(st);
        self.shared.kick.notify_all();
        PendingUpdate(slot)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            batches_submitted: self.shared.batches_submitted.load(Ordering::Relaxed),
            requests_coalesced: self.shared.requests_coalesced.load(Ordering::Relaxed),
            requests_shed: self.shared.requests_shed.load(Ordering::Relaxed),
            requests_rejected: self.shared.requests_rejected.load(Ordering::Relaxed),
            requests_joined: self.shared.requests_joined.load(Ordering::Relaxed),
            flushes_by_size: self.shared.flushes_by_size.load(Ordering::Relaxed),
            flushes_by_timer: self.shared.flushes_by_timer.load(Ordering::Relaxed),
        }
    }

    /// Flush whatever is pending, resolve every outstanding waiter, and join
    /// the flusher thread. Idempotent; also runs on drop. Requests arriving
    /// after shutdown are rejected immediately.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.stop = true;
        }
        self.shared.kick.notify_all();
        if let Some(handle) = self.flusher.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl<I: DynamicDistanceIndex> Drop for AdaptiveBatcher<I> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn flusher_loop<I: DynamicDistanceIndex>(shared: &BatcherShared<I>) {
    loop {
        let (batch, waiters, by_size, by_timer) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.waiters.is_empty() {
                    if st.stop {
                        return;
                    }
                    st = shared.kick.wait(st).unwrap();
                    continue;
                }
                let budget = Duration::from_millis(shared.cfg.latency_ms);
                let age = st.opened_at.map_or(budget, |t| t.elapsed());
                let by_size = st.pending.len() >= shared.cfg.max_updates;
                if st.stop || by_size || age >= budget {
                    st.opened_at = None;
                    break (
                        std::mem::take(&mut st.pending),
                        std::mem::take(&mut st.waiters),
                        by_size,
                        !by_size && !st.stop,
                    );
                }
                // Not ripe yet: sleep out the remaining budget, re-checking
                // whenever a new request lands (it may trip the size budget).
                let (guard, _) = shared.kick.wait_timeout(st, budget - age).unwrap();
                st = guard;
            }
        };
        // Submit outside the lock: producers keep accumulating the *next*
        // batch while the writer applies this one — the wait below is
        // exactly where repair amortisation comes from under load.
        let keys: Vec<u64> = waiters.iter().filter_map(|(k, _)| *k).collect();
        let ticket = shared.server.submit_with_keys(keys, batch);
        let outcome = shared.server.wait_for(ticket);
        shared.batches_submitted.fetch_add(1, Ordering::Relaxed);
        shared.requests_coalesced.fetch_add(waiters.len() as u64, Ordering::Relaxed);
        if by_size {
            shared.flushes_by_size.fetch_add(1, Ordering::Relaxed);
        } else if by_timer {
            shared.flushes_by_timer.fetch_add(1, Ordering::Relaxed);
        }
        // Resolve before releasing the keys: a retry arriving in between
        // either joins the already-resolved slot (fine — PendingUpdate::wait
        // is idempotent) or, after release, hits the server's dedup window.
        for (_, waiter) in &waiters {
            waiter.resolve(outcome.clone());
        }
        let mut st = shared.state.lock().unwrap();
        for (key, _) in &waiters {
            if let Some(k) = key {
                st.in_flight.remove(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use stl_core::{Stl, StlConfig};
    use stl_graph::builder::from_edges;

    fn diamond_server() -> Arc<StlServer> {
        let g = from_edges(4, vec![(0, 1, 3), (1, 2, 4), (2, 3, 5), (0, 3, 20)]);
        let stl = Stl::build(&g, &StlConfig::default());
        Arc::new(StlServer::start(g, stl, ServerConfig::default()))
    }

    #[test]
    fn coalesces_concurrent_requests_into_one_writer_batch() {
        let server = diamond_server();
        let batcher = AdaptiveBatcher::start(
            Arc::clone(&server),
            BatcherConfig { latency_ms: 250, ..Default::default() },
        );
        // Three requests inside one latency window → one merged batch.
        let pends: Vec<PendingUpdate> = vec![
            batcher.submit(vec![EdgeUpdate::new(0, 1, 5)]),
            batcher.submit(vec![EdgeUpdate::new(1, 2, 6)]),
            batcher.submit(vec![EdgeUpdate::new(2, 3, 7)]),
        ];
        for p in &pends {
            assert_eq!(p.wait(), BatchOutcome::Applied { seq: 1 });
        }
        let stats = batcher.stats();
        assert_eq!(stats.batches_submitted, 1, "three requests must merge into one batch");
        assert_eq!(stats.requests_coalesced, 3);
        assert_eq!(stats.flushes_by_timer, 1);
        batcher.shutdown();
        assert_eq!(server.generation(), 1);
        assert_eq!(server.snapshot().query(0, 2), 11);
    }

    #[test]
    fn size_budget_trips_before_the_timer() {
        let server = diamond_server();
        let batcher = AdaptiveBatcher::start(
            Arc::clone(&server),
            BatcherConfig { latency_ms: 10_000, max_updates: 2, ..Default::default() },
        );
        let a = batcher.submit(vec![EdgeUpdate::new(0, 1, 9)]);
        let b = batcher.submit(vec![EdgeUpdate::new(1, 2, 9)]);
        assert_eq!(a.wait(), BatchOutcome::Applied { seq: 1 });
        assert_eq!(b.wait(), BatchOutcome::Applied { seq: 1 });
        assert!(batcher.stats().flushes_by_size >= 1);
        batcher.shutdown();
    }

    #[test]
    fn invalid_request_is_rejected_alone_without_poisoning_the_batch() {
        let server = diamond_server();
        let batcher = AdaptiveBatcher::start(
            Arc::clone(&server),
            BatcherConfig { latency_ms: 250, ..Default::default() },
        );
        let good = batcher.submit(vec![EdgeUpdate::new(0, 1, 8)]);
        let bad = batcher.submit(vec![EdgeUpdate::new(0, 2, 8)]); // no such edge
        match bad.wait() {
            BatchOutcome::Rejected(reason) => assert!(reason.contains("no edge"), "{reason}"),
            BatchOutcome::Applied { .. } => panic!("invalid request must not be applied"),
        }
        assert_eq!(
            good.wait(),
            BatchOutcome::Applied { seq: 1 },
            "co-submitter must be unaffected"
        );
        assert_eq!(server.snapshot().query(0, 1), 8);
        assert_eq!(batcher.stats().requests_rejected, 1);
        assert_eq!(server.stats().batches_rejected, 1, "pre-check rejections reach ServerStats");
        batcher.shutdown();
    }

    #[test]
    fn admission_control_sheds_beyond_the_queue_bound() {
        let server = diamond_server();
        let batcher = AdaptiveBatcher::start(
            Arc::clone(&server),
            BatcherConfig { latency_ms: 300, max_updates: 1000, max_queued: 3 },
        );
        // Fill the queue within one latency window, then overflow it.
        let fill: Vec<PendingUpdate> =
            (0..3).map(|i| batcher.submit(vec![EdgeUpdate::new(0, 1, 10 + i)])).collect();
        let shed = batcher.submit(vec![EdgeUpdate::new(2, 3, 9)]);
        match shed.wait() {
            BatchOutcome::Rejected(reason) => {
                assert!(reason.contains("overloaded"), "shed must be explicit: {reason}")
            }
            BatchOutcome::Applied { .. } => panic!("requests beyond the bound must shed"),
        }
        assert_eq!(batcher.stats().requests_shed, 1);
        for p in fill {
            assert_eq!(p.wait(), BatchOutcome::Applied { seq: 1 }, "queued requests still apply");
        }
        batcher.shutdown();
    }

    #[test]
    fn keyed_retry_after_apply_is_answered_from_the_dedup_window() {
        let server = diamond_server();
        let batcher = AdaptiveBatcher::start(
            Arc::clone(&server),
            BatcherConfig { latency_ms: 0, ..Default::default() },
        );
        let first = batcher.submit_keyed(Some(42), vec![EdgeUpdate::new(0, 1, 7)]);
        assert_eq!(first.wait(), BatchOutcome::Applied { seq: 1 });
        // Same key again — e.g. the client timed out and retried after the
        // batch already landed. Must be acknowledged with the *original*
        // sequence number, without submitting a second batch.
        let retry = batcher.submit_keyed(Some(42), vec![EdgeUpdate::new(0, 1, 7)]);
        assert_eq!(retry.wait(), BatchOutcome::Applied { seq: 1 });
        assert_eq!(batcher.stats().batches_submitted, 1, "retry must not re-apply");
        assert_eq!(server.stats().dedup_hits, 1);
        assert_eq!(server.generation(), 1);
        batcher.shutdown();
    }

    #[test]
    fn concurrent_keyed_retry_joins_the_pending_slot() {
        let server = diamond_server();
        let batcher = AdaptiveBatcher::start(
            Arc::clone(&server),
            BatcherConfig { latency_ms: 250, ..Default::default() },
        );
        // Two submissions with the same key inside one latency window: the
        // second joins the first's outcome slot instead of enqueueing a
        // duplicate update.
        let a = batcher.submit_keyed(Some(7), vec![EdgeUpdate::new(1, 2, 9)]);
        let b = batcher.submit_keyed(Some(7), vec![EdgeUpdate::new(1, 2, 9)]);
        assert_eq!(a.wait(), BatchOutcome::Applied { seq: 1 });
        assert_eq!(b.wait(), BatchOutcome::Applied { seq: 1 });
        let stats = batcher.stats();
        assert_eq!(stats.requests_joined, 1, "second submission must join, not enqueue");
        assert_eq!(stats.batches_submitted, 1);
        assert_eq!(server.snapshot().query(1, 2), 9, "the update applied exactly once");
        assert_eq!(server.stats().updates_submitted, 1);
        batcher.shutdown();
    }

    #[test]
    fn shutdown_flushes_pending_and_rejects_new() {
        let server = diamond_server();
        let batcher = AdaptiveBatcher::start(
            Arc::clone(&server),
            BatcherConfig {
                latency_ms: 10_000, // would never flush by timer within the test
                ..Default::default()
            },
        );
        let p = batcher.submit(vec![EdgeUpdate::new(0, 3, 2)]);
        batcher.shutdown();
        assert_eq!(p.wait(), BatchOutcome::Applied { seq: 1 }, "shutdown must flush, not drop");
        assert_eq!(server.snapshot().query(0, 3), 2);
        assert!(!batcher.submit(vec![EdgeUpdate::new(0, 1, 4)]).wait().is_applied());
    }
}
