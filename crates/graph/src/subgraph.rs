//! Induced-subgraph extraction with vertex re-labelling.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Extract the subgraph induced by `members` (must be duplicate-free).
///
/// Returns `(subgraph, old_id)` where the new vertex `i` corresponds to the
/// original vertex `old_id[i] == members[i]`. Coordinates are carried over.
pub fn induced_subgraph(g: &CsrGraph, members: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
    let mut local = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in members.iter().enumerate() {
        debug_assert_eq!(local[v as usize], u32::MAX, "duplicate member {v}");
        local[v as usize] = i as u32;
    }
    let mut b = GraphBuilder::new(members.len());
    for (i, &v) in members.iter().enumerate() {
        for (u, w) in g.neighbors(v) {
            let lu = local[u as usize];
            if lu != u32::MAX && lu > i as u32 {
                b.add_edge(i as VertexId, lu, w);
            }
        }
    }
    let mut sub = b.build();
    if let Some(coords) = g.coords() {
        sub.set_coords(members.iter().map(|&v| coords[v as usize]).collect());
    }
    (sub, members.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn path_subgraph() {
        let g = from_edges(5, vec![(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4)]);
        let (sub, map) = induced_subgraph(&g, &[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map, vec![1, 2, 3]);
        assert_eq!(sub.weight(0, 1), Some(2));
        assert_eq!(sub.weight(1, 2), Some(3));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn non_adjacent_members_yield_empty_edges() {
        let g = from_edges(4, vec![(0, 1, 1), (2, 3, 1)]);
        let (sub, _) = induced_subgraph(&g, &[0, 2]);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    fn coords_carried_over() {
        let mut g = from_edges(3, vec![(0, 1, 1), (1, 2, 1)]);
        g.set_coords(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let (sub, _) = induced_subgraph(&g, &[2, 0]);
        assert_eq!(sub.coords().unwrap(), &[(2.0, 2.0), (0.0, 0.0)]);
    }

    #[test]
    fn member_order_defines_ids() {
        let g = from_edges(3, vec![(0, 1, 5)]);
        let (sub, map) = induced_subgraph(&g, &[1, 0]);
        assert_eq!(map, vec![1, 0]);
        assert_eq!(sub.weight(0, 1), Some(5));
    }
}
