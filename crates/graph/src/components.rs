//! Connectivity utilities.

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Label each vertex with a component id (`0..k`); returns `(labels, k)`.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut stack = Vec::new();
    let mut k = 0u32;
    for s in 0..n as VertexId {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = k;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for (u, _) in g.neighbors(v) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = k;
                    stack.push(u);
                }
            }
        }
        k += 1;
    }
    (comp, k as usize)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &CsrGraph) -> bool {
    let (_, k) = connected_components(g);
    k <= 1
}

/// Extract the largest connected component.
///
/// Returns the component as a new graph plus `old_id[new] = old` mapping.
/// Coordinates are carried over when present.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let (comp, k) = connected_components(g);
    if k <= 1 {
        return (g.clone(), (0..g.num_vertices() as VertexId).collect());
    }
    let mut sizes = vec![0usize; k];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best = sizes.iter().enumerate().max_by_key(|&(_, s)| *s).map(|(i, _)| i as u32).unwrap();
    let members: Vec<VertexId> =
        (0..g.num_vertices() as VertexId).filter(|&v| comp[v as usize] == best).collect();
    let (sub, map) = crate::subgraph::induced_subgraph(g, &members);
    (sub, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn single_component() {
        let g = from_edges(4, vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        assert!(is_connected(&g));
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&c| c == 0));
    }

    #[test]
    fn multiple_components_counted() {
        let g = from_edges(6, vec![(0, 1, 1), (2, 3, 1), (3, 4, 1)]);
        let (_, k) = connected_components(&g);
        assert_eq!(k, 3); // {0,1}, {2,3,4}, {5}
        assert!(!is_connected(&g));
    }

    #[test]
    fn largest_component_extracted() {
        let g = from_edges(6, vec![(0, 1, 7), (2, 3, 1), (3, 4, 2)]);
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map, vec![2, 3, 4]);
        assert_eq!(sub.weight(0, 1), Some(1)); // old (2,3)
        assert_eq!(sub.weight(1, 2), Some(2)); // old (3,4)
    }

    #[test]
    fn connected_graph_returned_as_is() {
        let g = from_edges(3, vec![(0, 1, 1), (1, 2, 1)]);
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph_connected() {
        let g = from_edges(0, Vec::new());
        assert!(is_connected(&g));
    }
}
