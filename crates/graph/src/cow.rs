//! Chunked copy-on-write storage for the mutable arrays of the index stack.
//!
//! The epoch-snapshot service publishes one immutable snapshot per applied
//! batch. Deep-cloning the world per publish costs `O(n + m + Σ|L(v)|)` even
//! for a one-edge batch — exactly the asymptotic the paper's maintenance
//! algorithms avoid. This module makes publish cost proportional to what a
//! batch actually *touched*:
//!
//! * Mutable flat arrays (the label arena, the CSR weight array) are split
//!   into **vertex-aligned chunks** of roughly [`DEFAULT_CHUNK_ENTRIES`]
//!   entries (~16 KiB). Each chunk is a [`Chunk`]: an offset view into a
//!   reference-counted, 64-byte-aligned buffer ([`AlignedBuf`]). Chunk
//!   boundaries never split one vertex's span, so a vertex's entries remain
//!   one contiguous `&[T]` and hot read loops are untouched.
//! * A *clone* of the store clones only the chunk table — `O(#chunks)`
//!   pointer copies, no data movement. That clone **is** the published
//!   snapshot.
//! * A *write* goes through [`cow_chunk`]: if the chunk is shared with any
//!   snapshot it is copied first (`O(chunk)`), otherwise it is written in
//!   place. Per epoch, a chunk is copied at most once; untouched chunks stay
//!   physically shared across every generation that doesn't write them.
//! * A [`DirtyTracker`] embedded in each store records the copies, so the
//!   write points the maintenance algorithms already funnel through
//!   (`Labels::set`, `CsrGraph::apply_update`) account bytes-copied per
//!   generation for free; the server drains it into its published counters.
//! * When an index quiesces, [`ChunkedStore::compact`] re-flattens the whole
//!   arena into **one** contiguous 64-byte-aligned allocation and re-points
//!   every chunk into it. Because chunks are offset views, compaction does
//!   not give up copy-on-write: the next write to a compacted store promotes
//!   only the touched chunk back into a private buffer, and publishing stays
//!   `O(#chunks)`. A flat store additionally exposes
//!   [`ChunkedStore::flat_slice`] so read paths can skip the chunk-table
//!   indirection entirely (the direct-offset query path in `stl_core`).
//!
//! [`ChunkedStore`] is the generic store; the CSR weight array uses it as
//! [`WeightStore`], and `stl_core`'s label arena wraps it behind its
//! per-vertex offset table.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::types::Weight;

/// Target entries per chunk: `4 Ki × 4 B = 16 KiB` for `u32` payloads.
/// Measured on the `publish` bench: a repair wave's affected vertices
/// scatter across the arena, so bytes-copied per epoch is roughly
/// `#touched regions × chunk size` — 16 KiB chunks copy ~4× less than
/// 64 KiB ones for the same batch, while the per-publish chunk-table clone
/// stays `O(#chunks)` pointer copies (tens of µs even at 10⁸ entries).
pub const DEFAULT_CHUNK_ENTRIES: u64 = 4 * 1024;

/// Marker for element types the aligned arena may store.
///
/// # Safety
///
/// Implementors must guarantee that **any** 8-bit pattern sequence of
/// `size_of::<Self>()` bytes is a valid value (the arena zero-initialises
/// backing lines before payloads are copied in), and that
/// `align_of::<Self>() <= 64` so a cache-line-aligned base pointer is
/// aligned for `Self`.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

// SAFETY: every bit pattern is a valid value for the primitive integers,
// and all have alignment ≤ 8.
unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}

/// One cache line of backing storage for [`AlignedBuf`].
#[derive(Clone, Copy)]
#[repr(C, align(64))]
struct CacheLine([u8; 64]);

/// A `[T]` allocation whose base address is 64-byte aligned.
///
/// Backed by whole cache lines so a flat label arena starts (and every
/// 16-entry `u32` group stays) on a cache-line boundary — the layout the
/// vectorized min-plus kernel in `stl_core::query` wants. `Box<[T]>` gives
/// no alignment beyond `align_of::<T>()`, hence this wrapper.
pub struct AlignedBuf<T: Pod> {
    lines: Box<[CacheLine]>,
    len: usize,
    _elem: PhantomData<T>,
}

impl<T: Pod> AlignedBuf<T> {
    /// A zero-initialised buffer of `len` entries (zero bytes are a valid
    /// `T` by the [`Pod`] contract).
    pub fn zeroed(len: usize) -> Self {
        let nl = (len * std::mem::size_of::<T>()).div_ceil(64);
        Self { lines: vec![CacheLine([0u8; 64]); nl].into_boxed_slice(), len, _elem: PhantomData }
    }

    /// An aligned copy of `src`.
    pub fn copy_of(src: &[T]) -> Self {
        let mut buf = Self::zeroed(src.len());
        buf.as_mut_slice().copy_from_slice(src);
        buf
    }

    /// A buffer of `len` entries all set to `value`.
    pub fn filled(len: usize, value: T) -> Self {
        let mut buf = Self::zeroed(len);
        buf.as_mut_slice().fill(value);
        buf
    }

    /// Concatenate `spans` into one aligned buffer, padding so every span
    /// *starts* on a multiple of `align` entries (pick `align` so that
    /// `align × size_of::<T>()` is a cache-line multiple and every span base
    /// is 64-byte aligned). Gaps are filled with `pad`. Returns the buffer
    /// and each span's start entry — the SoA compaction primitive behind
    /// `stl_core`'s deep-label arena.
    pub fn concat_aligned<'s>(
        spans: impl Iterator<Item = &'s [T]> + Clone,
        align: usize,
        pad: T,
    ) -> (Self, Vec<u64>) {
        assert!(align.is_power_of_two(), "span alignment must be a power of two");
        let mut starts = Vec::new();
        let mut cursor = 0u64;
        for s in spans.clone() {
            cursor = cursor.next_multiple_of(align as u64);
            starts.push(cursor);
            cursor += s.len() as u64;
        }
        // Pad the tail too, so a vectorized reader that rounds a span's
        // length up to the next `align` boundary stays in bounds.
        let total = cursor.next_multiple_of(align as u64) as usize;
        let mut buf = Self::filled(total, pad);
        let flat = buf.as_mut_slice();
        for (s, &start) in spans.zip(&starts) {
            flat[start as usize..start as usize + s.len()].copy_from_slice(s);
        }
        (buf, starts)
    }

    /// Number of `T` entries.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no entries.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entries as a slice whose base pointer is 64-byte aligned.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: the backing lines cover `len * size_of::<T>()` bytes, the
        // base is 64-byte aligned (≥ align_of::<T>() by the Pod contract),
        // and every byte is initialised (zeroed at allocation), so any
        // readback is a valid `T` — again the Pod contract.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr().cast::<T>(), self.len) }
    }

    /// Mutable access to the entries.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as for `as_slice`, plus `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.lines.as_mut_ptr().cast::<T>(), self.len) }
    }
}

impl<T: Pod> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf(len={})", self.len)
    }
}

/// One chunk of a [`ChunkedStore`]: a `len`-entry view into a shared
/// aligned buffer starting at entry `off`.
///
/// A freshly allocated (or copy-on-write promoted) chunk owns its whole
/// buffer (`off == 0`, `len == buf.len()`); after
/// [`ChunkedStore::compact`] every chunk of the store is a view into one
/// flat arena at its canonical global offset. Either way `as_slice` is one
/// bounds-checked index away, and clone is an `Arc` bump.
#[derive(Debug, Clone)]
pub struct Chunk<T: Pod> {
    buf: Arc<AlignedBuf<T>>,
    off: usize,
    len: usize,
}

impl<T: Pod> Chunk<T> {
    /// A chunk owning a private aligned copy of `src`.
    fn owned(src: &[T]) -> Self {
        Chunk { buf: Arc::new(AlignedBuf::copy_of(src)), off: 0, len: src.len() }
    }

    /// A chunk owning a private `value`-filled buffer.
    fn owned_filled(value: T, len: usize) -> Self {
        let mut buf = AlignedBuf::zeroed(len);
        buf.as_mut_slice().fill(value);
        Chunk { buf: Arc::new(buf), off: 0, len }
    }

    /// The chunk's entries.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.buf.as_slice()[self.off..self.off + self.len]
    }

    /// Whether this chunk owns its whole buffer (a promotion candidate for
    /// in-place writes; views into a flat arena are never whole).
    #[inline]
    fn is_whole(&self) -> bool {
        self.off == 0 && self.len == self.buf.len()
    }

    /// Whether two chunks read the same physical payload.
    #[inline]
    fn same_payload(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf) && self.off == other.off
    }
}

impl<T: Pod> std::ops::Deref for Chunk<T> {
    type Target = [T];
    #[inline(always)]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

/// Bytes copied by copy-on-write chunk promotions (and moved by epoch
/// compactions), per drain window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Chunks that were physically copied (first write to a shared chunk).
    pub chunks_copied: u64,
    /// Total bytes those copies moved.
    pub bytes_copied: u64,
    /// Epoch-compaction passes that re-flattened the store into one
    /// contiguous aligned arena ([`ChunkedStore::compact`]).
    pub compactions: u64,
    /// Total bytes those compactions moved. Kept separate from
    /// `bytes_copied`: compaction is a deliberate full-arena copy traded
    /// for faster reads, not a per-epoch publish cost.
    pub bytes_flattened: u64,
}

impl std::ops::AddAssign for CowStats {
    fn add_assign(&mut self, o: Self) {
        self.chunks_copied += o.chunks_copied;
        self.bytes_copied += o.bytes_copied;
        self.compactions += o.compactions;
        self.bytes_flattened += o.bytes_flattened;
    }
}

impl std::ops::Add for CowStats {
    type Output = Self;
    fn add(mut self, o: Self) -> Self {
        self += o;
        self
    }
}

/// Chunk-granular dirty set: which chunks were COW-copied since the last
/// [`DirtyTracker::take`], how many bytes that moved, and how many bytes
/// compaction passes flattened in the same window.
#[derive(Debug, Default)]
pub struct DirtyTracker {
    bits: Vec<u64>,
    marked: Vec<u32>,
    bytes: u64,
    compactions: u64,
    flattened: u64,
}

impl DirtyTracker {
    /// Tracker for `num_chunks` chunks, all clean.
    pub fn new(num_chunks: usize) -> Self {
        Self {
            bits: vec![0; num_chunks.div_ceil(64)],
            marked: Vec::new(),
            bytes: 0,
            compactions: 0,
            flattened: 0,
        }
    }

    /// Record that `chunk` was copied, moving `bytes` bytes. Idempotent per
    /// drain window: re-marking an already-dirty chunk adds nothing (the
    /// second write hit the already-private copy).
    #[inline]
    pub fn mark(&mut self, chunk: usize, bytes: usize) {
        let (w, b) = (chunk / 64, 1u64 << (chunk % 64));
        if self.bits[w] & b == 0 {
            self.bits[w] |= b;
            self.marked.push(chunk as u32);
            self.bytes += bytes as u64;
        }
    }

    /// Record one compaction pass that moved `bytes` bytes.
    #[inline]
    pub fn mark_compaction(&mut self, bytes: u64) {
        self.compactions += 1;
        self.flattened += bytes;
    }

    /// Whether `chunk` was copied in the current window.
    #[inline]
    pub fn is_dirty(&self, chunk: usize) -> bool {
        self.bits[chunk / 64] & (1 << (chunk % 64)) != 0
    }

    /// Counters for the current window without clearing it.
    pub fn stats(&self) -> CowStats {
        CowStats {
            chunks_copied: self.marked.len() as u64,
            bytes_copied: self.bytes,
            compactions: self.compactions,
            bytes_flattened: self.flattened,
        }
    }

    /// Drain the window: return its counters and reset to all-clean in
    /// `O(marked)`, not `O(#chunks)`.
    pub fn take(&mut self) -> CowStats {
        let out = self.stats();
        for &c in &self.marked {
            self.bits[c as usize / 64] &= !(1 << (c as usize % 64));
        }
        self.marked.clear();
        self.bytes = 0;
        self.compactions = 0;
        self.flattened = 0;
        out
    }
}

/// Chunk-granular *written* set — which chunks received any write (in-place
/// or promoting) since the last [`TouchedChunks::take`].
///
/// Distinct from [`DirtyTracker`], which records only physical COW copies:
/// a second write to an already-private chunk copies nothing but still
/// changes values. Derived structures rebuilt per epoch from the touched
/// set (the spine filter in `stl_core`) need the latter, so every write
/// point marks here unconditionally.
#[derive(Debug, Default, Clone)]
pub struct TouchedChunks {
    bits: Vec<u64>,
    ids: Vec<u32>,
}

impl TouchedChunks {
    fn new(num_chunks: usize) -> Self {
        Self { bits: vec![0; num_chunks.div_ceil(64)], ids: Vec::new() }
    }

    #[inline]
    fn mark(&mut self, chunk: usize) {
        let (w, b) = (chunk / 64, 1u64 << (chunk % 64));
        if self.bits[w] & b == 0 {
            self.bits[w] |= b;
            self.ids.push(chunk as u32);
        }
    }

    /// Drain the set: the written chunk ids, in first-write order.
    pub fn take(&mut self) -> Vec<u32> {
        for &c in &self.ids {
            self.bits[c as usize / 64] &= !(1 << (c as usize % 64));
        }
        std::mem::take(&mut self.ids)
    }
}

/// Make `chunk` uniquely owned (copying it if any snapshot still shares its
/// buffer, or if it is a view into a flat arena) and return its mutable
/// payload. Copies are recorded in `dirty` under index `c`.
#[inline]
pub fn cow_chunk<'a, T: Pod>(
    chunk: &'a mut Chunk<T>,
    c: usize,
    dirty: &mut DirtyTracker,
) -> &'a mut [T] {
    if !chunk.is_whole() || Arc::get_mut(&mut chunk.buf).is_none() {
        dirty.mark(c, std::mem::size_of_val(chunk.as_slice()));
        *chunk = Chunk::owned(chunk.as_slice());
    }
    Arc::get_mut(&mut chunk.buf).expect("chunk is uniquely owned after promotion").as_mut_slice()
}

/// Partition `0..n` vertices into chunks of at most ~`target` entries each,
/// never splitting one vertex's span. `offsets[v]..offsets[v+1]` is vertex
/// `v`'s span in the flat array. Returns `(chunk_of_vertex, chunk_starts)`
/// with `chunk_starts.len() == num_chunks + 1`; a vertex whose span alone
/// exceeds `target` gets a private oversized chunk.
pub fn partition_vertex_chunks(offsets: &[u64], target: u64) -> (Vec<u32>, Vec<u64>) {
    assert!(target > 0, "chunk target must be positive");
    let n = offsets.len() - 1;
    let mut chunk_of = Vec::with_capacity(n);
    let mut starts = vec![0u64];
    let mut cur_start = 0u64;
    let mut c = 0u32;
    for v in 0..n {
        if offsets[v] > cur_start && offsets[v + 1] - cur_start > target {
            starts.push(offsets[v]);
            cur_start = offsets[v];
            c += 1;
        }
        chunk_of.push(c);
    }
    starts.push(offsets[n]);
    (chunk_of, starts)
}

/// A flat `[T]` array split into vertex-aligned copy-on-write [`Chunk`]s
/// with per-window dirty accounting and optional epoch compaction.
///
/// Addressing is by **global index** plus the **owning vertex** (the vertex
/// whose span contains the index), which locates the chunk in O(1) without
/// a search. The vertex-alignment invariant guarantees any one vertex's
/// span is one contiguous slice of one chunk.
#[derive(Debug)]
pub struct ChunkedStore<T: Pod> {
    chunk_of: Arc<[u32]>,
    chunk_starts: Arc<[u64]>,
    chunks: Vec<Chunk<T>>,
    /// `Some` iff every chunk is a view into this one contiguous arena at
    /// its canonical offset (established by [`Self::compact`], invalidated
    /// by the first subsequent write).
    flat: Option<Arc<AlignedBuf<T>>>,
    dirty: DirtyTracker,
    written: TouchedChunks,
}

impl<T: Pod> Clone for ChunkedStore<T> {
    /// O(#chunks): shares every chunk with the original. The clone starts
    /// with clean dirty and written windows of its own.
    fn clone(&self) -> Self {
        Self {
            chunk_of: Arc::clone(&self.chunk_of),
            chunk_starts: Arc::clone(&self.chunk_starts),
            chunks: self.chunks.clone(),
            flat: self.flat.clone(),
            dirty: DirtyTracker::new(self.chunks.len()),
            written: TouchedChunks::new(self.chunks.len()),
        }
    }
}

impl<T: Pod> ChunkedStore<T> {
    fn assemble(chunk_of: Vec<u32>, chunk_starts: Vec<u64>, chunks: Vec<Chunk<T>>) -> Self {
        let dirty = DirtyTracker::new(chunks.len());
        let written = TouchedChunks::new(chunks.len());
        Self {
            chunk_of: chunk_of.into(),
            chunk_starts: chunk_starts.into(),
            chunks,
            flat: None,
            dirty,
            written,
        }
    }

    /// Chunk a flat array along the vertex spans `offsets[v]..offsets[v+1]`.
    pub fn from_flat(offsets: &[u64], flat: &[T], target: u64) -> Self {
        assert_eq!(*offsets.last().expect("offsets never empty") as usize, flat.len());
        let (chunk_of, chunk_starts) = partition_vertex_chunks(offsets, target);
        let chunks = chunk_starts
            .windows(2)
            .map(|w| Chunk::owned(&flat[w[0] as usize..w[1] as usize]))
            .collect();
        Self::assemble(chunk_of, chunk_starts, chunks)
    }

    /// A store of `value`-filled entries with the same layout rules.
    pub fn filled(offsets: &[u64], value: T, target: u64) -> Self {
        let (chunk_of, chunk_starts) = partition_vertex_chunks(offsets, target);
        let chunks = chunk_starts
            .windows(2)
            .map(|w| Chunk::owned_filled(value, (w[1] - w[0]) as usize))
            .collect();
        Self::assemble(chunk_of, chunk_starts, chunks)
    }

    /// Total number of entries.
    #[inline(always)]
    pub fn len(&self) -> usize {
        *self.chunk_starts.last().expect("chunk_starts never empty") as usize
    }

    /// Whether the store is empty.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry at global index `idx` inside `owner`'s span.
    #[inline(always)]
    pub fn get(&self, owner: usize, idx: u64) -> T {
        let c = self.chunk_of[owner] as usize;
        self.chunks[c][(idx - self.chunk_starts[c]) as usize]
    }

    /// Overwrite the entry at global index `idx` inside `owner`'s span,
    /// copying the chunk first if a snapshot still shares it.
    #[inline]
    pub fn set(&mut self, owner: usize, idx: u64, value: T) {
        let c = self.chunk_of[owner] as usize;
        let j = (idx - self.chunk_starts[c]) as usize;
        self.flat = None;
        self.written.mark(c);
        cow_chunk(&mut self.chunks[c], c, &mut self.dirty)[j] = value;
    }

    /// The contiguous entries `lo..hi`, which must lie inside `owner`'s
    /// span (vertex alignment guarantees they share one chunk).
    #[inline(always)]
    pub fn slice(&self, owner: usize, lo: u64, hi: u64) -> &[T] {
        let c = self.chunk_of[owner] as usize;
        let base = self.chunk_starts[c];
        &self.chunks[c].as_slice()[(lo - base) as usize..(hi - base) as usize]
    }

    /// The payload of chunk `c` — for callers that resolved chunk-local
    /// coordinates themselves (e.g. a precomputed per-vertex location
    /// table, which turns the `chunk_of → chunk_starts` pointer chase into
    /// a single load on read hot paths).
    #[inline(always)]
    pub fn chunk(&self, c: usize) -> &[T] {
        self.chunks[c].as_slice()
    }

    /// Overwrite entry `j` of chunk `c` (chunk-local coordinates), copying
    /// the chunk first if a snapshot still shares it.
    #[inline]
    pub fn set_in_chunk(&mut self, c: usize, j: usize, value: T) {
        self.flat = None;
        self.written.mark(c);
        cow_chunk(&mut self.chunks[c], c, &mut self.dirty)[j] = value;
    }

    /// Iterate all entries in global order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.chunks.iter().flat_map(|c| c.as_slice().iter().copied())
    }

    /// Iterate the chunk payloads in global order (serialization).
    pub fn chunk_slices(&self) -> impl Iterator<Item = &[T]> {
        self.chunks.iter().map(|c| c.as_slice())
    }

    /// `(chunk-of-vertex, chunk-start-offsets)` layout tables, for builders
    /// that compute chunk-local indices themselves.
    pub fn layout(&self) -> (&[u32], &[u64]) {
        (&self.chunk_of, &self.chunk_starts)
    }

    /// Raw per-chunk base pointers for parallel builders that write disjoint
    /// slots without synchronisation. Panics if any chunk is shared — only
    /// freshly constructed stores qualify. Every chunk is conservatively
    /// marked written.
    pub fn unique_chunk_ptrs(&mut self) -> Vec<*mut T> {
        self.flat = None;
        for c in 0..self.chunks.len() {
            self.written.mark(c);
        }
        self.chunks
            .iter_mut()
            .map(|c| {
                assert!(c.is_whole(), "chunks must be uniquely owned");
                Arc::get_mut(&mut c.buf)
                    .expect("chunks must be uniquely owned")
                    .as_mut_slice()
                    .as_mut_ptr()
            })
            .collect()
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Whether chunk `c` is physically shared with `other` (same payload).
    pub fn shares_chunk(&self, other: &Self, c: usize) -> bool {
        self.chunks[c].same_payload(&other.chunks[c])
    }

    /// How many chunks are physically shared with `other`.
    pub fn shared_chunks_with(&self, other: &Self) -> usize {
        self.chunks.iter().zip(&other.chunks).filter(|(a, b)| a.same_payload(b)).count()
    }

    /// Drain the copy-on-write counters accumulated since the last drain.
    pub fn take_cow_stats(&mut self) -> CowStats {
        self.dirty.take()
    }

    /// Current window's counters without draining.
    pub fn cow_stats(&self) -> CowStats {
        self.dirty.stats()
    }

    /// Drain the chunk ids written (in place or by promotion) since the
    /// last drain — the input for rebuilding per-epoch derived structures.
    pub fn take_written_chunks(&mut self) -> Vec<u32> {
        self.written.take()
    }

    /// Re-flatten the store into one contiguous 64-byte-aligned arena.
    ///
    /// Every chunk becomes a view into the arena at its canonical global
    /// offset, so reads (chunked or [`flat_slice`](Self::flat_slice)-based)
    /// see identical values, clones still share per chunk, and the next
    /// write still promotes only its own chunk (`O(chunk)`, not
    /// `O(arena)`). Sharing with snapshots taken *before* the compaction is
    /// given up — that full-arena copy is the price of the flat read path,
    /// and it is accounted in [`CowStats::bytes_flattened`].
    ///
    /// Returns the bytes moved; 0 (and no work) if the store is already
    /// flat.
    pub fn compact(&mut self) -> u64 {
        if self.flat.is_some() {
            return 0;
        }
        let total = self.len();
        let mut buf = AlignedBuf::zeroed(total);
        let dst = buf.as_mut_slice();
        for (c, w) in self.chunk_starts.windows(2).enumerate() {
            dst[w[0] as usize..w[1] as usize].copy_from_slice(self.chunks[c].as_slice());
        }
        let arena = Arc::new(buf);
        for (c, w) in self.chunk_starts.windows(2).enumerate() {
            self.chunks[c] =
                Chunk { buf: Arc::clone(&arena), off: w[0] as usize, len: (w[1] - w[0]) as usize };
        }
        self.flat = Some(arena);
        let bytes = total as u64 * std::mem::size_of::<T>() as u64;
        self.dirty.mark_compaction(bytes);
        bytes
    }

    /// Whether the store is currently one flat arena (compacted and not
    /// written since).
    #[inline(always)]
    pub fn is_flat(&self) -> bool {
        self.flat.is_some()
    }

    /// The whole store as one contiguous 64-byte-aligned slice, if flat.
    /// Global offsets index it directly — no chunk table in the way.
    #[inline(always)]
    pub fn flat_slice(&self) -> Option<&[T]> {
        self.flat.as_ref().map(|b| b.as_slice())
    }

    /// A physically independent copy (every chunk reallocated) — the cost a
    /// deep snapshot clone pays; kept for baselines and benchmarks.
    pub fn deep_clone(&self) -> Self {
        Self {
            chunk_of: Arc::clone(&self.chunk_of),
            chunk_starts: Arc::clone(&self.chunk_starts),
            chunks: self.chunks.iter().map(|c| Chunk::owned(c.as_slice())).collect(),
            flat: None,
            dirty: DirtyTracker::new(self.chunks.len()),
            written: TouchedChunks::new(self.chunks.len()),
        }
    }

    /// Resident bytes of payload + chunk table + layout arrays.
    pub fn memory_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
            + self.chunks.len() * std::mem::size_of::<Chunk<T>>()
            + self.chunk_of.len() * 4
            + self.chunk_starts.len() * 8
    }

    /// Open a [`DisjointWriter`] phase over this store: shared access for a
    /// pool of workers whose read/write sets are **disjoint at entry
    /// granularity**, with copy-on-write promotion still handled per chunk.
    pub fn disjoint_writer(&mut self) -> DisjointWriter<'_, T> {
        let nc = self.chunks.len();
        let mut state = Vec::with_capacity(nc);
        let mut ptrs = Vec::with_capacity(nc);
        let mut lens = Vec::with_capacity(nc);
        for chunk in &mut self.chunks {
            lens.push(chunk.len as u32);
            let unique = chunk.is_whole() && Arc::get_mut(&mut chunk.buf).is_some();
            if unique {
                // Uniquely owned: workers write in place, exactly like
                // `cow_chunk` would.
                state.push(AtomicU8::new(CHUNK_PRIVATE));
                let payload = Arc::get_mut(&mut chunk.buf).expect("chunk is unique").as_mut_slice();
                ptrs.push(AtomicPtr::new(payload.as_mut_ptr()));
            } else {
                // A snapshot (or the flat arena) still shares this chunk's
                // buffer: the pointer is read-only until the first write
                // promotes the chunk.
                state.push(AtomicU8::new(CHUNK_SHARED));
                ptrs.push(AtomicPtr::new(chunk.as_slice().as_ptr().cast_mut()));
            }
        }
        let touched = (0..nc.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        DisjointWriter {
            store: self,
            state: state.into_boxed_slice(),
            ptrs: ptrs.into_boxed_slice(),
            lens: lens.into_boxed_slice(),
            touched,
            promoted: Mutex::new(Vec::new()),
        }
    }
}

// Per-chunk promotion states of a [`DisjointWriter`] phase.
const CHUNK_PRIVATE: u8 = 0; // uniquely owned — write in place
const CHUNK_SHARED: u8 = 1; // shared with a snapshot — promote before writing
const CHUNK_PROMOTING: u8 = 2; // one worker is copying it right now

/// Concurrent write access to a [`ChunkedStore`] for workers with
/// **disjoint entry sets**, preserving the copy-on-write publish contract.
///
/// The serial write path (`cow_chunk`) promotes a shared chunk under `&mut`
/// exclusivity. A pool of repair workers cannot share that: two workers may
/// write *different entries of the same chunk* (label indices of one vertex
/// interleave regions owned by different stable trees), so chunk-range
/// handles cannot partition the arena. Instead this phase object hands every
/// worker shared access with:
///
/// * **no per-write locking** — a write is one atomic state load plus one
///   atomic pointer load; reads are a single atomic pointer load;
/// * **per-chunk promotion gates** — the first write to a chunk still shared
///   with a snapshot CASes the chunk's state to `PROMOTING`, copies the
///   payload into a fresh aligned buffer, publishes the new base pointer,
///   and flips the state to `PRIVATE`; concurrent writers of *other
///   entries* of the same chunk spin only for the duration of that one
///   copy. Per phase each chunk is copied at most once, exactly as in the
///   serial path;
/// * **deferred installation** — promoted chunks are swapped into the store
///   and recorded in its [`DirtyTracker`] when the phase ends (on drop), so
///   `take_cow_stats` accounting is indistinguishable from serial repair.
///   Written chunks (promoted or in-place) also land in the store's
///   [`TouchedChunks`] window, and any write invalidates a flat arena.
///
/// Readers racing a promotion of their chunk may observe the old or the new
/// payload; both hold identical values for every entry outside the
/// promoting worker's own set, so disjointness makes either answer correct.
/// The entry-level access methods are `unsafe`: the *caller* owns the proof
/// that no entry is touched by two workers (for the label arena that proof
/// is the τ-disjointness argument in `stl_core::labelling`).
#[derive(Debug)]
pub struct DisjointWriter<'a, T: Pod> {
    store: &'a mut ChunkedStore<T>,
    state: Box<[AtomicU8]>,
    ptrs: Box<[AtomicPtr<T>]>,
    lens: Box<[u32]>,
    /// Chunk-granular written bitmap, merged into the store's
    /// [`TouchedChunks`] on drop.
    touched: Box<[AtomicU64]>,
    /// Freshly promoted chunks, kept alive here until installed on drop.
    promoted: Mutex<Vec<(u32, Arc<AlignedBuf<T>>)>>,
}

impl<T: Pod> DisjointWriter<'_, T> {
    /// Read entry `j` of chunk `c`.
    ///
    /// # Safety
    /// No other worker may concurrently *write* this entry. (Reads of
    /// entries another worker owns are unsound — the disjointness contract
    /// covers reads and writes alike.)
    #[inline(always)]
    pub unsafe fn get_in_chunk(&self, c: usize, j: usize) -> T {
        debug_assert!(j < self.lens[c] as usize, "entry {j} out of chunk {c}");
        // Acquire pairs with the Release pointer publish in `promote`: a
        // reader that observes the promoted pointer sees the copied payload.
        unsafe { *self.ptrs[c].load(Ordering::Acquire).add(j) }
    }

    /// Overwrite entry `j` of chunk `c`, promoting the chunk first if a
    /// snapshot still shares it.
    ///
    /// # Safety
    /// No other worker may concurrently read or write this entry.
    #[inline]
    pub unsafe fn set_in_chunk(&self, c: usize, j: usize, value: T) {
        debug_assert!(j < self.lens[c] as usize, "entry {j} out of chunk {c}");
        let (w, b) = (c / 64, 1u64 << (c % 64));
        if self.touched[w].load(Ordering::Relaxed) & b == 0 {
            self.touched[w].fetch_or(b, Ordering::Relaxed);
        }
        if self.state[c].load(Ordering::Acquire) != CHUNK_PRIVATE {
            self.promote(c);
        }
        unsafe { *self.ptrs[c].load(Ordering::Acquire).add(j) = value }
    }

    /// Promote chunk `c` to a private copy (first write of the phase to a
    /// chunk a snapshot still shares). Exactly one worker wins the CAS and
    /// copies; losers spin until the copy is published.
    #[cold]
    fn promote(&self, c: usize) {
        loop {
            match self.state[c].compare_exchange(
                CHUNK_SHARED,
                CHUNK_PROMOTING,
                Ordering::Acquire,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    let len = self.lens[c] as usize;
                    let src = self.ptrs[c].load(Ordering::Relaxed);
                    // SAFETY: `src` points at the shared payload, which no
                    // worker ever writes (writes require CHUNK_PRIVATE).
                    let mut fresh = Arc::new(AlignedBuf::copy_of(unsafe {
                        std::slice::from_raw_parts(src, len)
                    }));
                    let base = Arc::get_mut(&mut fresh)
                        .expect("fresh chunk is unique")
                        .as_mut_slice()
                        .as_mut_ptr();
                    // Keep the copy alive before publishing its pointer.
                    self.promoted.lock().expect("promotion list poisoned").push((c as u32, fresh));
                    self.ptrs[c].store(base, Ordering::Release);
                    self.state[c].store(CHUNK_PRIVATE, Ordering::Release);
                    return;
                }
                Err(CHUNK_PRIVATE) => return, // lost the race; copy is live
                Err(_) => std::hint::spin_loop(), // promotion in flight
            }
        }
    }

    /// How many chunks this phase has promoted so far.
    pub fn promoted_chunks(&self) -> usize {
        self.promoted.lock().expect("promotion list poisoned").len()
    }
}

impl<T: Pod> Drop for DisjointWriter<'_, T> {
    /// End of phase: install promoted chunks into the store, account them
    /// in the dirty window (mirroring serial `cow_chunk` writes), and merge
    /// the written bitmap into the store's touched-chunk window.
    fn drop(&mut self) {
        let promoted = std::mem::take(&mut *self.promoted.lock().expect("promotion list poisoned"));
        for (c, fresh) in promoted {
            let c = c as usize;
            let len = self.store.chunks[c].len;
            self.store.dirty.mark(c, len * std::mem::size_of::<T>());
            self.store.chunks[c] = Chunk { buf: fresh, off: 0, len };
        }
        let mut any = false;
        for (w, word) in self.touched.iter().enumerate() {
            let mut bits = word.load(Ordering::Relaxed);
            while bits != 0 {
                let c = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.store.written.mark(c);
                any = true;
            }
        }
        if any {
            self.store.flat = None;
        }
    }
}

/// The CSR weight array: a [`ChunkedStore`] over arc weights, chunked along
/// vertex neighbour-list boundaries so `neighbor_slices` stays contiguous.
pub type WeightStore = ChunkedStore<Weight>;

impl ChunkedStore<Weight> {
    /// Chunk the flat weight array along vertex arc-range boundaries
    /// (`arc_offsets` is the CSR offset array, `arc_offsets[v]..[v+1]` being
    /// vertex `v`'s arcs).
    pub fn from_csr(arc_offsets: &[u32], weights: &[Weight]) -> Self {
        let wide: Vec<u64> = arc_offsets.iter().map(|&o| o as u64).collect();
        Self::from_flat(&wide, weights, DEFAULT_CHUNK_ENTRIES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offsets(spans: &[u64]) -> Vec<u64> {
        let mut o = vec![0u64];
        for &s in spans {
            o.push(o.last().unwrap() + s);
        }
        o
    }

    #[test]
    fn partition_respects_vertex_alignment() {
        // Spans 3,3,3,3 with target 4: v0 alone ends at 3 (≤4, keep), v1
        // would end at 6 (>4, split before v1), and so on.
        let o = offsets(&[3, 3, 3, 3]);
        let (chunk_of, starts) = partition_vertex_chunks(&o, 4);
        assert_eq!(chunk_of, vec![0, 1, 2, 3]);
        assert_eq!(starts, vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn partition_packs_small_vertices() {
        let o = offsets(&[2, 2, 2, 2, 2]);
        let (chunk_of, starts) = partition_vertex_chunks(&o, 4);
        assert_eq!(chunk_of, vec![0, 0, 1, 1, 2]);
        assert_eq!(starts, vec![0, 4, 8, 10]);
    }

    #[test]
    fn partition_oversized_vertex_gets_private_chunk() {
        let o = offsets(&[1, 100, 1]);
        let (chunk_of, starts) = partition_vertex_chunks(&o, 4);
        assert_eq!(chunk_of, vec![0, 1, 2]);
        assert_eq!(starts, vec![0, 1, 101, 102]);
    }

    #[test]
    fn partition_handles_empty() {
        let (chunk_of, starts) = partition_vertex_chunks(&[0], 4);
        assert!(chunk_of.is_empty());
        assert_eq!(starts, vec![0, 0]);
    }

    #[test]
    fn aligned_buf_is_cache_line_aligned() {
        for len in [0usize, 1, 15, 16, 17, 4096] {
            let buf = AlignedBuf::<u32>::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_slice().as_ptr() as usize % 64, 0, "len={len}");
            assert!(buf.as_slice().iter().all(|&x| x == 0));
        }
        let copy = AlignedBuf::copy_of(&[7u32, 8, 9]);
        assert_eq!(copy.as_slice(), &[7, 8, 9]);
        assert_eq!(copy.as_slice().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn concat_aligned_pads_and_places_spans() {
        let spans: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![], vec![4; 16], vec![5, 6]];
        let (buf, starts) = AlignedBuf::concat_aligned(spans.iter().map(|s| s.as_slice()), 16, 99);
        assert_eq!(starts, vec![0, 16, 16, 32]);
        assert_eq!(buf.len() % 16, 0, "tail padded to alignment");
        assert_eq!(buf.as_slice().as_ptr() as usize % 64, 0);
        for (s, &start) in spans.iter().zip(&starts) {
            let got = &buf.as_slice()[start as usize..start as usize + s.len()];
            assert_eq!(got, s.as_slice());
            // Entry alignment: a 16-entry-aligned start of u32 data is
            // 64-byte aligned in memory.
            assert_eq!(start % 16, 0);
        }
        // Everything between spans is pad.
        assert_eq!(&buf.as_slice()[3..16], &[99u32; 13]);
        assert_eq!(&buf.as_slice()[34..48], &[99u32; 14]);

        let (empty, starts) = AlignedBuf::<u32>::concat_aligned(std::iter::empty(), 16, 0);
        assert_eq!(empty.len(), 0);
        assert!(starts.is_empty());
    }

    #[test]
    fn dirty_tracker_idempotent_marks_and_drains() {
        let mut d = DirtyTracker::new(130);
        d.mark(0, 100);
        d.mark(129, 50);
        d.mark(0, 100); // already dirty: no double count
        assert!(d.is_dirty(0) && d.is_dirty(129) && !d.is_dirty(64));
        let want = CowStats { chunks_copied: 2, bytes_copied: 150, ..Default::default() };
        assert_eq!(d.stats(), want);
        assert_eq!(d.take(), want);
        assert_eq!(d.stats(), CowStats::default());
        assert!(!d.is_dirty(0));
    }

    #[test]
    fn dirty_tracker_accounts_compactions() {
        let mut d = DirtyTracker::new(4);
        d.mark_compaction(4096);
        assert_eq!(
            d.stats(),
            CowStats { compactions: 1, bytes_flattened: 4096, ..Default::default() }
        );
        assert_eq!(d.take().compactions, 1);
        assert_eq!(d.stats(), CowStats::default());
    }

    fn store(target: u64) -> WeightStore {
        // 4 vertices with 2 arcs each.
        let offs: Vec<u64> = vec![0, 2, 4, 6, 8];
        let weights: Vec<Weight> = (0..8).collect();
        ChunkedStore::from_flat(&offs, &weights, target)
    }

    #[test]
    fn chunked_store_reads_match_flat_layout() {
        let s = store(4);
        assert_eq!(s.len(), 8);
        assert_eq!(s.num_chunks(), 2);
        for owner in 0..4 {
            for idx in (owner as u64 * 2)..(owner as u64 * 2 + 2) {
                assert_eq!(s.get(owner, idx), idx as Weight);
            }
        }
        assert_eq!(s.slice(1, 2, 4), &[2, 3]);
        assert_eq!(s.slice(3, 6, 8), &[6, 7]);
        let all: Vec<Weight> = s.iter().collect();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
        let concat: Vec<Weight> = s.chunk_slices().flatten().copied().collect();
        assert_eq!(concat, all);
    }

    #[test]
    fn filled_store_matches_layout() {
        let offs = offsets(&[3, 3, 2]);
        let s: ChunkedStore<u32> = ChunkedStore::filled(&offs, 9, 4);
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|x| x == 9));
        let (chunk_of, starts) = s.layout();
        assert_eq!(chunk_of.len(), 3);
        assert_eq!(*starts.last().unwrap(), 8);
    }

    #[test]
    fn clone_shares_until_first_write() {
        let mut a = store(4);
        let b = a.clone();
        assert_eq!(a.shared_chunks_with(&b), 2);
        a.set(0, 1, 99);
        assert_eq!(a.shared_chunks_with(&b), 1, "only the written chunk unshared");
        assert!(!a.shares_chunk(&b, 0));
        assert!(a.shares_chunk(&b, 1));
        assert_eq!(a.get(0, 1), 99);
        assert_eq!(b.get(0, 1), 1, "snapshot keeps the old value");
        // First write copied one 4-entry chunk (16 bytes); second write to
        // the same chunk is free.
        assert_eq!(
            a.cow_stats(),
            CowStats { chunks_copied: 1, bytes_copied: 16, ..Default::default() }
        );
        a.set(0, 0, 98);
        assert_eq!(
            a.take_cow_stats(),
            CowStats { chunks_copied: 1, bytes_copied: 16, ..Default::default() }
        );
    }

    #[test]
    fn unique_store_writes_in_place() {
        let mut a = store(4);
        a.set(2, 5, 42);
        assert_eq!(a.cow_stats(), CowStats::default(), "no snapshot → no copy");
        assert_eq!(a.get(2, 5), 42);
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let a = store(4);
        let b = a.deep_clone();
        assert_eq!(a.shared_chunks_with(&b), 0);
        assert_eq!(b.get(0, 0), 0);
    }

    #[test]
    fn unique_chunk_ptrs_allow_direct_writes() {
        let mut a = store(4);
        let ptrs = a.unique_chunk_ptrs();
        assert_eq!(ptrs.len(), 2);
        // SAFETY: store is uniquely owned and indices are in range.
        unsafe { *ptrs[1].add(0) = 77 };
        assert_eq!(a.get(2, 4), 77);
    }

    #[test]
    #[should_panic(expected = "uniquely owned")]
    fn unique_chunk_ptrs_reject_shared_chunks() {
        let mut a = store(4);
        let _pin = a.clone();
        let _ = a.unique_chunk_ptrs();
    }

    #[test]
    fn compact_preserves_values_and_flat_reads() {
        let mut a = store(4);
        assert!(!a.is_flat());
        let bytes = a.compact();
        assert_eq!(bytes, 8 * 4);
        assert!(a.is_flat());
        let flat = a.flat_slice().expect("flat after compaction");
        assert_eq!(flat, (0..8).collect::<Vec<Weight>>().as_slice());
        assert_eq!(flat.as_ptr() as usize % 64, 0, "arena must be 64-byte aligned");
        // Chunked reads go through the same arena and agree.
        for owner in 0..4 {
            for idx in (owner as u64 * 2)..(owner as u64 * 2 + 2) {
                assert_eq!(a.get(owner, idx), idx as Weight);
            }
        }
        assert_eq!(a.cow_stats().compactions, 1);
        assert_eq!(a.cow_stats().bytes_flattened, 32);
        // Compacting a flat store is free.
        assert_eq!(a.compact(), 0);
        assert_eq!(a.cow_stats().compactions, 1);
    }

    #[test]
    fn compact_keeps_cow_chunk_granular() {
        let mut a = store(4);
        a.compact();
        let snap = a.clone();
        assert!(snap.is_flat(), "clone of a flat store starts flat");
        assert_eq!(a.shared_chunks_with(&snap), 2);
        a.set(0, 1, 99);
        assert!(!a.is_flat(), "first write un-flattens the writer");
        assert!(snap.is_flat(), "held snapshot stays flat");
        assert_eq!(snap.get(0, 1), 1, "snapshot keeps the old value");
        assert_eq!(a.get(0, 1), 99);
        // Only the touched chunk was promoted out of the arena.
        assert_eq!(a.shared_chunks_with(&snap), 1);
        assert_eq!(a.cow_stats().chunks_copied, 1, "write after compact copies one chunk");
    }

    #[test]
    fn compact_after_divergence_reflattens() {
        let mut a = store(4);
        a.compact();
        a.set(0, 0, 5);
        assert!(!a.is_flat());
        a.compact();
        assert!(a.is_flat());
        assert_eq!(a.flat_slice().unwrap()[0], 5);
        assert_eq!(a.cow_stats().compactions, 2);
    }

    #[test]
    fn written_chunks_tracked_across_write_paths() {
        let mut a = store(4);
        assert!(a.take_written_chunks().is_empty());
        a.set(0, 1, 9); // chunk 0, in place (unique)
        a.set(0, 0, 8); // same chunk, marked once
        a.set(3, 7, 7); // chunk 1
        assert_eq!(a.take_written_chunks(), vec![0, 1]);
        assert!(a.take_written_chunks().is_empty(), "drained");
        {
            let w = a.disjoint_writer();
            // SAFETY: single thread.
            unsafe { w.set_in_chunk(1, 0, 70) };
        }
        assert_eq!(a.take_written_chunks(), vec![1]);
    }

    #[test]
    fn disjoint_writer_in_place_when_unique() {
        let mut a = store(4);
        {
            let w = a.disjoint_writer();
            // SAFETY: single thread, disjoint trivially.
            unsafe { w.set_in_chunk(0, 1, 91) };
            assert_eq!(unsafe { w.get_in_chunk(0, 1) }, 91);
            assert_eq!(w.promoted_chunks(), 0, "unique chunks write in place");
        }
        assert_eq!(a.get(0, 1), 91);
        assert_eq!(a.cow_stats(), CowStats::default());
    }

    #[test]
    fn disjoint_writer_promotes_shared_chunks_once() {
        let mut a = store(4);
        let snap = a.clone();
        {
            let w = a.disjoint_writer();
            // SAFETY: single thread.
            unsafe {
                w.set_in_chunk(1, 0, 70);
                w.set_in_chunk(1, 1, 71); // same chunk: no second copy
                assert_eq!(w.get_in_chunk(1, 0), 70, "read-your-write after promotion");
            }
            assert_eq!(w.promoted_chunks(), 1);
        }
        // Installed on drop: values visible, snapshot untouched, dirty window
        // carries exactly one 16-byte chunk copy (4 × u32).
        assert_eq!(a.get(2, 4), 70);
        assert_eq!(a.get(2, 5), 71);
        assert_eq!(snap.get(2, 4), 4);
        assert!(!a.shares_chunk(&snap, 1));
        assert!(a.shares_chunk(&snap, 0), "untouched chunk stays shared");
        assert_eq!(
            a.take_cow_stats(),
            CowStats { chunks_copied: 1, bytes_copied: 16, ..Default::default() }
        );
    }

    #[test]
    fn disjoint_writer_promotes_out_of_flat_arena() {
        let mut a = store(4);
        a.compact();
        let snap = a.clone();
        {
            let w = a.disjoint_writer();
            // SAFETY: single thread.
            unsafe { w.set_in_chunk(0, 0, 55) };
        }
        assert!(!a.is_flat(), "writer phase with writes un-flattens");
        assert!(snap.is_flat());
        assert_eq!(a.get(0, 0), 55);
        assert_eq!(snap.get(0, 0), 0, "flat snapshot keeps old values");
        assert_eq!(a.shared_chunks_with(&snap), 1, "untouched chunk still aliases the arena");
    }

    #[test]
    fn disjoint_writer_concurrent_disjoint_entries() {
        // 8 vertices × 4 entries, tiny chunks, everything pinned by a
        // snapshot: two threads write interleaved disjoint entries and race
        // on promotions.
        let offs = offsets(&[4, 4, 4, 4, 4, 4, 4, 4]);
        let flat: Vec<u32> = (0..32).collect();
        let mut a: ChunkedStore<u32> = ChunkedStore::from_flat(&offs, &flat, 8);
        let snap = a.clone();
        {
            let w = a.disjoint_writer();
            let wr = &w;
            std::thread::scope(|s| {
                for t in 0..2u32 {
                    s.spawn(move || {
                        for v in 0..8usize {
                            // Thread 0 owns entries 0..2 of every vertex,
                            // thread 1 entries 2..4 — disjoint, interleaved
                            // within every chunk.
                            for e in (t as usize * 2)..(t as usize * 2 + 2) {
                                let idx = v * 4 + e;
                                let c = wr.store.chunk_of[v] as usize;
                                let j = idx - wr.store.chunk_starts[c] as usize;
                                // SAFETY: entry sets are disjoint by
                                // construction.
                                unsafe { wr.set_in_chunk(c, j, 1000 + idx as u32) };
                            }
                        }
                    });
                }
            });
        }
        for v in 0..8usize {
            for e in 0..4usize {
                let idx = (v * 4 + e) as u64;
                assert_eq!(a.get(v, idx), 1000 + idx as u32);
                assert_eq!(snap.get(v, idx), idx as u32, "snapshot must keep old values");
            }
        }
        let stats = a.take_cow_stats();
        assert_eq!(stats.chunks_copied as usize, a.num_chunks(), "all chunks were shared");
    }
}
