//! Directed graph with asymmetric arc weights (for the §8 extension).
//!
//! Road networks with direction-dependent travel times share an undirected
//! *structure* (the roads) but carry two weights per road. [`DiGraph`]
//! stores out- and in-adjacency in CSR form and can project the symmetrized
//! structure for hierarchy construction.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::hash::FxHashMap;
use crate::types::{VertexId, Weight};

/// Directed weighted graph in double-CSR (out + in) form.
#[derive(Debug, Clone)]
pub struct DiGraph {
    out_offsets: Box<[u32]>,
    out_targets: Box<[VertexId]>,
    out_weights: Vec<Weight>,
    in_offsets: Box<[u32]>,
    in_targets: Box<[VertexId]>,
    in_weights: Vec<Weight>,
    num_arcs: usize,
}

impl DiGraph {
    /// Build from directed arcs `(from, to, weight)`; duplicate arcs keep
    /// the minimum weight, self-loops are dropped.
    pub fn from_arcs(
        n: usize,
        arcs: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        let mut dedup: FxHashMap<(VertexId, VertexId), Weight> = FxHashMap::default();
        for (u, v, w) in arcs {
            assert!((u as usize) < n && (v as usize) < n, "arc endpoint out of range");
            if u == v {
                continue;
            }
            dedup.entry((u, v)).and_modify(|e| *e = (*e).min(w)).or_insert(w);
        }
        let mut list: Vec<(VertexId, VertexId, Weight)> =
            dedup.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        list.sort_unstable();
        let build_csr = |n: usize, arcs: &[(VertexId, VertexId, Weight)]| {
            let mut offsets = vec![0u32; n + 1];
            for &(u, _, _) in arcs {
                offsets[u as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor: Vec<u32> = offsets[..n].to_vec();
            let mut targets = vec![0 as VertexId; arcs.len()];
            let mut weights = vec![0 as Weight; arcs.len()];
            for &(u, v, w) in arcs {
                let c = cursor[u as usize] as usize;
                targets[c] = v;
                weights[c] = w;
                cursor[u as usize] += 1;
            }
            (offsets.into_boxed_slice(), targets.into_boxed_slice(), weights)
        };
        let (out_offsets, out_targets, out_weights) = build_csr(n, &list);
        let mut rev: Vec<(VertexId, VertexId, Weight)> =
            list.iter().map(|&(u, v, w)| (v, u, w)).collect();
        rev.sort_unstable();
        let (in_offsets, in_targets, in_weights) = build_csr(n, &rev);
        let num_arcs = list.len();
        Self { out_offsets, out_targets, out_weights, in_offsets, in_targets, in_weights, num_arcs }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Outgoing `(target, weight)` arcs of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let (lo, hi) =
            (self.out_offsets[v as usize] as usize, self.out_offsets[v as usize + 1] as usize);
        self.out_targets[lo..hi].iter().copied().zip(self.out_weights[lo..hi].iter().copied())
    }

    /// Incoming arcs of `v` as `(source, weight)`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let (lo, hi) =
            (self.in_offsets[v as usize] as usize, self.in_offsets[v as usize + 1] as usize);
        self.in_targets[lo..hi].iter().copied().zip(self.in_weights[lo..hi].iter().copied())
    }

    /// Weight of the arc `u → v`, if present.
    pub fn arc_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let (lo, hi) =
            (self.out_offsets[u as usize] as usize, self.out_offsets[u as usize + 1] as usize);
        self.out_targets[lo..hi].binary_search(&v).ok().map(|i| self.out_weights[lo + i])
    }

    /// Update the weight of arc `u → v` (one direction only); returns the
    /// old weight, or `None` if the arc does not exist.
    pub fn set_arc_weight(&mut self, u: VertexId, v: VertexId, w: Weight) -> Option<Weight> {
        let (lo, hi) =
            (self.out_offsets[u as usize] as usize, self.out_offsets[u as usize + 1] as usize);
        let oi = lo + self.out_targets[lo..hi].binary_search(&v).ok()?;
        let old = std::mem::replace(&mut self.out_weights[oi], w);
        let (ilo, ihi) =
            (self.in_offsets[v as usize] as usize, self.in_offsets[v as usize + 1] as usize);
        let ii =
            ilo + self.in_targets[ilo..ihi].binary_search(&u).expect("in-CSR must mirror out-CSR");
        self.in_weights[ii] = w;
        Some(old)
    }

    /// The symmetrized structure: one undirected edge per connected vertex
    /// pair, weighted by the minimum of the two directions (the weight is
    /// irrelevant for separator-based hierarchy construction).
    pub fn undirected_structure(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut b = GraphBuilder::with_capacity(n, self.num_arcs);
        for v in 0..n as VertexId {
            for (u, w) in self.out_neighbors(v) {
                b.add_edge(v, u, w);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetric_arcs_kept_separate() {
        let g = DiGraph::from_arcs(3, vec![(0, 1, 10), (1, 0, 99), (1, 2, 5)]);
        assert_eq!(g.num_arcs(), 3);
        let out0: Vec<_> = g.out_neighbors(0).collect();
        assert_eq!(out0, vec![(1, 10)]);
        let in0: Vec<_> = g.in_neighbors(0).collect();
        assert_eq!(in0, vec![(1, 99)]);
    }

    #[test]
    fn duplicate_arcs_keep_min() {
        let g = DiGraph::from_arcs(2, vec![(0, 1, 9), (0, 1, 3)]);
        assert_eq!(g.num_arcs(), 1);
        assert_eq!(g.out_neighbors(0).next(), Some((1, 3)));
    }

    #[test]
    fn one_way_street_in_structure() {
        let g = DiGraph::from_arcs(3, vec![(0, 1, 4), (1, 2, 6)]);
        let u = g.undirected_structure();
        assert_eq!(u.num_edges(), 2);
        assert_eq!(u.weight(0, 1), Some(4));
    }

    #[test]
    fn structure_merges_directions_to_min() {
        let g = DiGraph::from_arcs(2, vec![(0, 1, 10), (1, 0, 3)]);
        let u = g.undirected_structure();
        assert_eq!(u.num_edges(), 1);
        assert_eq!(u.weight(0, 1), Some(3));
    }

    #[test]
    fn self_loops_dropped() {
        let g = DiGraph::from_arcs(2, vec![(0, 0, 1), (0, 1, 2)]);
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn arc_weight_update_one_direction_only() {
        let mut g = DiGraph::from_arcs(2, vec![(0, 1, 10), (1, 0, 20)]);
        assert_eq!(g.set_arc_weight(0, 1, 5), Some(10));
        assert_eq!(g.arc_weight(0, 1), Some(5));
        assert_eq!(g.arc_weight(1, 0), Some(20), "reverse arc untouched");
        // In-CSR mirrors the change.
        assert_eq!(g.in_neighbors(1).find(|&(s, _)| s == 0), Some((0, 5)));
    }

    #[test]
    fn set_weight_on_missing_arc_is_none() {
        let mut g = DiGraph::from_arcs(3, vec![(0, 1, 1)]);
        assert_eq!(g.set_arc_weight(1, 0, 9), None);
        assert_eq!(g.set_arc_weight(0, 2, 9), None);
    }
}
