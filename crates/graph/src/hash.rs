//! A vendored Fx-style hasher for hot integer-keyed maps.
//!
//! `std`'s default SipHash is robust but slow for the small integer keys that
//! dominate partitioning and contraction inner loops. The Fx algorithm
//! (`hash = (hash.rotate_left(5) ^ word) * K`) is the rustc-internal
//! workhorse; we vendor it (~30 lines) instead of pulling a crate outside the
//! sanctioned dependency list.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline(always)]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline(always)]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
        assert!(!m.contains_key(&1001));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::BuildHasher;
        let bh = BuildHasherDefault::<FxHasher>::default();
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(bh.hash_one(i));
        }
        // Fx is not cryptographic but must be injective-ish on small ranges.
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn byte_writes_consistent() {
        use std::hash::Hasher;
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), c.finish());
    }
}
