//! Core integer domains shared by the whole workspace.

/// Vertex identifier. Dense, zero-based.
pub type VertexId = u32;

/// Edge weight (e.g. travel time). Non-negative by construction.
pub type Weight = u32;

/// Shortest-path distance. Computed with saturating arithmetic so that
/// [`INF`] acts as an absorbing "unreachable" element.
pub type Dist = u32;

/// Unreachable / uninitialised distance sentinel.
pub const INF: Dist = u32::MAX;

/// A single edge-weight update `(a, b, new_weight)` as used in Section 5 of
/// the paper. The edge `(a, b)` must already exist; road-network structure is
/// assumed stable (Section 8 handles insertions/deletions by `INF` weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeUpdate {
    /// One endpoint of the updated edge.
    pub a: VertexId,
    /// The other endpoint of the updated edge.
    pub b: VertexId,
    /// The weight after the update.
    pub new_weight: Weight,
}

impl EdgeUpdate {
    /// Convenience constructor.
    pub fn new(a: VertexId, b: VertexId, new_weight: Weight) -> Self {
        Self { a, b, new_weight }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inf_is_absorbing_under_saturating_add() {
        assert_eq!(INF.saturating_add(5), INF);
        assert_eq!(5u32.saturating_add(INF), INF);
        assert_eq!(INF.saturating_add(INF), INF);
    }

    #[test]
    fn edge_update_roundtrip() {
        let u = EdgeUpdate::new(3, 7, 42);
        assert_eq!(u.a, 3);
        assert_eq!(u.b, 7);
        assert_eq!(u.new_weight, 42);
    }
}
