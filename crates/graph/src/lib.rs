//! Road-network graph substrate for the Stable Tree Labelling (STL) stack.
//!
//! The crate provides the weighted, undirected (and optionally directed)
//! graph representation every index in this workspace is built on:
//!
//! * [`CsrGraph`] — compressed-sparse-row adjacency with *mutable* edge
//!   weights, the dynamic-road-network model of the paper (structure is
//!   fixed, weights change).
//! * [`GraphBuilder`] — edge-list ingestion with de-duplication.
//! * [`io`] — DIMACS `.gr` reading and writing.
//! * [`components`] — connectivity utilities (largest component extraction).
//! * [`hash`] — a vendored Fx-style hasher for hot integer-keyed maps.
//!
//! Distances use saturating `u32` arithmetic with [`INF`] as the unreachable
//! sentinel; see `DESIGN.md` §2 for the rationale.

pub mod builder;
pub mod components;
pub mod cow;
pub mod csr;
pub mod digraph;
pub mod error;
pub mod hash;
pub mod io;
pub mod subgraph;
pub mod types;

pub use builder::GraphBuilder;
pub use cow::{AlignedBuf, ChunkedStore, CowStats, DirtyTracker, DisjointWriter, Pod, WeightStore};
pub use csr::CsrGraph;
pub use digraph::DiGraph;
pub use error::GraphError;
pub use types::{Dist, EdgeUpdate, VertexId, Weight, INF};

/// Saturating addition on distances: anything involving [`INF`] stays `INF`.
#[inline(always)]
pub fn dist_add(a: Dist, b: Dist) -> Dist {
    a.saturating_add(b)
}
