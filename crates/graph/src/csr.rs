//! Compressed-sparse-row graph with mutable edge weights.
//!
//! The adjacency *structure* is immutable after construction (the paper's
//! dynamic model: "the structure of road networks is considered to be intact
//! in general", §8); edge *weights* can be updated in place, in both arc
//! directions at once, which is what all maintenance algorithms operate on.

use crate::error::GraphError;
use crate::types::{Dist, EdgeUpdate, VertexId, Weight, INF};

/// Undirected weighted graph in CSR form.
///
/// Every undirected edge `{u, v}` is stored as two arcs `u→v` and `v→u`.
/// Neighbour lists are sorted by target id, enabling `O(log deg)` arc lookup.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Box<[u32]>,
    targets: Box<[VertexId]>,
    weights: Vec<Weight>,
    coords: Option<Box<[(f32, f32)]>>,
    num_edges: usize,
}

impl CsrGraph {
    /// Construct from pre-validated CSR arrays. Used by [`crate::GraphBuilder`].
    pub(crate) fn from_parts(
        offsets: Box<[u32]>,
        targets: Box<[VertexId]>,
        weights: Vec<Weight>,
        num_edges: usize,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert_eq!(targets.len(), weights.len());
        Self { offsets, targets, weights, coords: None, num_edges }
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of stored arcs (`2 * num_edges`).
    #[inline(always)]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v`.
    #[inline(always)]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Maximum degree over all vertices (`d_max` in the complexity bounds).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Iterate `(neighbour, weight)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let (lo, hi) = self.arc_range(v);
        self.targets[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }

    /// Raw neighbour slices of `v` for hot loops: `(targets, weights)`.
    #[inline(always)]
    pub fn neighbor_slices(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let (lo, hi) = self.arc_range(v);
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    #[inline(always)]
    fn arc_range(&self, v: VertexId) -> (usize, usize) {
        (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize)
    }

    /// Index of the arc `u→v` in the flat arc arrays, if the edge exists.
    #[inline]
    pub fn arc_index(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let (lo, hi) = self.arc_range(u);
        self.targets[lo..hi].binary_search(&v).ok().map(|i| lo + i)
    }

    /// Weight of edge `{u, v}`, if present.
    #[inline]
    pub fn weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.arc_index(u, v).map(|i| self.weights[i])
    }

    /// Whether the edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.arc_index(u, v).is_some()
    }

    /// Set the weight of edge `{u, v}` (both arcs). Returns the old weight.
    pub fn set_weight(
        &mut self,
        u: VertexId,
        v: VertexId,
        w: Weight,
    ) -> Result<Weight, GraphError> {
        let n = self.num_vertices() as VertexId;
        if u >= n {
            return Err(GraphError::InvalidVertex(u));
        }
        if v >= n {
            return Err(GraphError::InvalidVertex(v));
        }
        let iu = self.arc_index(u, v).ok_or(GraphError::NoSuchEdge(u, v))?;
        let iv = self.arc_index(v, u).expect("reverse arc must exist");
        let old = self.weights[iu];
        self.weights[iu] = w;
        self.weights[iv] = w;
        Ok(old)
    }

    /// Apply a single [`EdgeUpdate`]; returns the previous weight.
    pub fn apply_update(&mut self, upd: EdgeUpdate) -> Result<Weight, GraphError> {
        self.set_weight(upd.a, upd.b, upd.new_weight)
    }

    /// Apply a batch of updates; returns the previous weights in order.
    pub fn apply_updates(&mut self, upds: &[EdgeUpdate]) -> Result<Vec<Weight>, GraphError> {
        upds.iter().map(|&u| self.apply_update(u)).collect()
    }

    /// Iterate undirected edges `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u).filter(move |&(v, _)| u < v).map(move |(v, w)| (u, v, w))
        })
    }

    /// Attach planar coordinates (used by inertial partitioning and A*).
    pub fn set_coords(&mut self, coords: Vec<(f32, f32)>) {
        assert_eq!(coords.len(), self.num_vertices(), "one coordinate per vertex");
        self.coords = Some(coords.into_boxed_slice());
    }

    /// Planar coordinates, if attached.
    #[inline]
    pub fn coords(&self) -> Option<&[(f32, f32)]> {
        self.coords.as_deref()
    }

    /// Sum of all finite weights reachable along a path upper bound:
    /// a safe "longer than any shortest path" bound that is still `< INF`.
    pub fn weight_sum_bound(&self) -> Dist {
        let mut acc: u64 = 0;
        for &w in &self.weights {
            if w != INF {
                acc += w as u64;
            }
        }
        // Arcs double-count each edge; halve, then clamp below INF.
        u64::min(acc / 2 + 1, (INF - 1) as u64) as Dist
    }

    /// Approximate resident memory of the graph structure in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.targets.len() * 4
            + self.weights.len() * 4
            + self.coords.as_ref().map_or(0, |c| c.len() * 8)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::types::EdgeUpdate;

    fn triangle() -> super::CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 20);
        b.add_edge(0, 2, 40);
        b.build()
    }

    #[test]
    fn sizes() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_sorted_and_weighted() {
        let g = triangle();
        let ns: Vec<_> = g.neighbors(0).collect();
        assert_eq!(ns, vec![(1, 10), (2, 40)]);
        let (ts, ws) = g.neighbor_slices(1);
        assert_eq!(ts, &[0, 2]);
        assert_eq!(ws, &[10, 20]);
    }

    #[test]
    fn weight_lookup_and_update() {
        let mut g = triangle();
        assert_eq!(g.weight(0, 2), Some(40));
        assert_eq!(g.weight(2, 0), Some(40));
        assert_eq!(g.weight(0, 0), None);
        let old = g.set_weight(0, 2, 5).unwrap();
        assert_eq!(old, 40);
        assert_eq!(g.weight(0, 2), Some(5));
        assert_eq!(g.weight(2, 0), Some(5));
    }

    #[test]
    fn update_errors() {
        let mut g = triangle();
        assert!(g.set_weight(0, 7, 1).is_err());
        assert!(g.set_weight(9, 0, 1).is_err());
        assert!(matches!(g.set_weight(1, 1, 1), Err(crate::GraphError::NoSuchEdge(1, 1))));
    }

    #[test]
    fn batch_updates_return_old_weights() {
        let mut g = triangle();
        let olds =
            g.apply_updates(&[EdgeUpdate::new(0, 1, 11), EdgeUpdate::new(1, 2, 21)]).unwrap();
        assert_eq!(olds, vec![10, 20]);
        assert_eq!(g.weight(0, 1), Some(11));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle();
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1, 10), (0, 2, 40), (1, 2, 20)]);
    }

    #[test]
    fn coords_roundtrip() {
        let mut g = triangle();
        assert!(g.coords().is_none());
        g.set_coords(vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        assert_eq!(g.coords().unwrap()[2], (0.0, 1.0));
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangle();
        assert!(g.memory_bytes() >= 6 * 4 + 6 * 4 + 4 * 4);
    }

    #[test]
    fn weight_sum_bound_exceeds_any_path() {
        let g = triangle();
        assert!(g.weight_sum_bound() >= 10 + 20 + 40);
    }
}
