//! Compressed-sparse-row graph with mutable edge weights.
//!
//! The adjacency *structure* is immutable after construction (the paper's
//! dynamic model: "the structure of road networks is considered to be intact
//! in general", §8); edge *weights* can be updated in place, in both arc
//! directions at once, which is what all maintenance algorithms operate on.
//!
//! Storage is snapshot-friendly: the immutable topology arrays are
//! `Arc`-shared, and the weight array lives in a chunked copy-on-write
//! [`WeightStore`]. `CsrGraph::clone` is therefore `O(#chunks)` — it shares
//! every byte with the original until a weight write promotes the touched
//! chunk — which is what lets the epoch-snapshot server publish a generation
//! without deep-copying the graph (see [`crate::cow`]).

use std::sync::Arc;

use crate::cow::{CowStats, WeightStore};
use crate::error::GraphError;
use crate::types::{Dist, EdgeUpdate, VertexId, Weight, INF};

/// Undirected weighted graph in CSR form.
///
/// Every undirected edge `{u, v}` is stored as two arcs `u→v` and `v→u`.
/// Neighbour lists are sorted by target id, enabling `O(log deg)` arc lookup.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Arc<[u32]>,
    targets: Arc<[VertexId]>,
    weights: WeightStore,
    coords: Option<Arc<[(f32, f32)]>>,
    num_edges: usize,
}

impl CsrGraph {
    /// Construct from pre-validated CSR arrays. Used by [`crate::GraphBuilder`].
    pub(crate) fn from_parts(
        offsets: Box<[u32]>,
        targets: Box<[VertexId]>,
        weights: Vec<Weight>,
        num_edges: usize,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert_eq!(targets.len(), weights.len());
        let weights = WeightStore::from_csr(&offsets, &weights);
        Self { offsets: offsets.into(), targets: targets.into(), weights, coords: None, num_edges }
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of stored arcs (`2 * num_edges`).
    #[inline(always)]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v`.
    #[inline(always)]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Maximum degree over all vertices (`d_max` in the complexity bounds).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Iterate `(neighbour, weight)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let (ts, ws) = self.neighbor_slices(v);
        ts.iter().copied().zip(ws.iter().copied())
    }

    /// Raw neighbour slices of `v` for hot loops: `(targets, weights)`.
    #[inline(always)]
    pub fn neighbor_slices(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let (lo, hi) = self.arc_range(v);
        (&self.targets[lo..hi], self.weights.slice(v as usize, lo as u64, hi as u64))
    }

    #[inline(always)]
    fn arc_range(&self, v: VertexId) -> (usize, usize) {
        (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize)
    }

    /// Index of the arc `u→v` in the flat arc arrays, if the edge exists.
    #[inline]
    pub fn arc_index(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let (lo, hi) = self.arc_range(u);
        self.targets[lo..hi].binary_search(&v).ok().map(|i| lo + i)
    }

    /// Weight of edge `{u, v}`, if present.
    #[inline]
    pub fn weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.arc_index(u, v).map(|i| self.weights.get(u as usize, i as u64))
    }

    /// Whether the edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.arc_index(u, v).is_some()
    }

    /// Set the weight of edge `{u, v}` (both arcs). Returns the old weight.
    pub fn set_weight(
        &mut self,
        u: VertexId,
        v: VertexId,
        w: Weight,
    ) -> Result<Weight, GraphError> {
        let n = self.num_vertices() as VertexId;
        if u >= n {
            return Err(GraphError::InvalidVertex(u));
        }
        if v >= n {
            return Err(GraphError::InvalidVertex(v));
        }
        let iu = self.arc_index(u, v).ok_or(GraphError::NoSuchEdge(u, v))? as u64;
        let iv = self.arc_index(v, u).expect("reverse arc must exist") as u64;
        let old = self.weights.get(u as usize, iu);
        self.weights.set(u as usize, iu, w);
        self.weights.set(v as usize, iv, w);
        Ok(old)
    }

    /// Apply a single [`EdgeUpdate`]; returns the previous weight.
    pub fn apply_update(&mut self, upd: EdgeUpdate) -> Result<Weight, GraphError> {
        self.set_weight(upd.a, upd.b, upd.new_weight)
    }

    /// Apply a batch of updates; returns the previous weights in order.
    pub fn apply_updates(&mut self, upds: &[EdgeUpdate]) -> Result<Vec<Weight>, GraphError> {
        upds.iter().map(|&u| self.apply_update(u)).collect()
    }

    /// Iterate undirected edges `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u).filter(move |&(v, _)| u < v).map(move |(v, w)| (u, v, w))
        })
    }

    /// Attach planar coordinates (used by inertial partitioning and A*).
    pub fn set_coords(&mut self, coords: Vec<(f32, f32)>) {
        assert_eq!(coords.len(), self.num_vertices(), "one coordinate per vertex");
        self.coords = Some(coords.into());
    }

    /// Planar coordinates, if attached.
    #[inline]
    pub fn coords(&self) -> Option<&[(f32, f32)]> {
        self.coords.as_deref()
    }

    /// Sum of all finite weights reachable along a path upper bound:
    /// a safe "longer than any shortest path" bound that is still `< INF`.
    pub fn weight_sum_bound(&self) -> Dist {
        let mut acc: u64 = 0;
        for w in self.weights.iter() {
            if w != INF {
                acc += w as u64;
            }
        }
        // Arcs double-count each edge; halve, then clamp below INF.
        u64::min(acc / 2 + 1, (INF - 1) as u64) as Dist
    }

    /// Approximate resident memory of the graph structure in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.targets.len() * 4
            + self.weights.memory_bytes()
            + self.coords.as_ref().map_or(0, |c| c.len() * 8)
    }

    // ---- copy-on-write surface (see crate::cow) ----

    /// Drain the bytes-copied counters of the weight store — one publish
    /// window's worth of copy-on-write promotions.
    pub fn take_cow_stats(&mut self) -> CowStats {
        self.weights.take_cow_stats()
    }

    /// Current window's copy-on-write counters without draining them.
    pub fn cow_stats(&self) -> CowStats {
        self.weights.cow_stats()
    }

    /// Number of weight chunks.
    pub fn num_weight_chunks(&self) -> usize {
        self.weights.num_chunks()
    }

    /// Re-flatten the weight store into one contiguous 64-byte-aligned
    /// arena (see [`crate::cow::ChunkedStore::compact`]). Returns the bytes
    /// moved; 0 if the weights are already flat.
    pub fn compact_weights(&mut self) -> u64 {
        self.weights.compact()
    }

    /// Whether the weight store is one flat arena (compacted, not written
    /// since).
    pub fn weights_flat(&self) -> bool {
        self.weights.is_flat()
    }

    /// Whether weight chunk `c` is physically shared with `other`.
    pub fn shares_weight_chunk(&self, other: &CsrGraph, c: usize) -> bool {
        self.weights.shares_chunk(&other.weights, c)
    }

    /// How many weight chunks are physically shared with `other`.
    pub fn shared_weight_chunks(&self, other: &CsrGraph) -> usize {
        self.weights.shared_chunks_with(&other.weights)
    }

    /// Whether the immutable topology arrays are shared with `other`
    /// (clones always share them; only independent builds do not).
    pub fn shares_topology(&self, other: &CsrGraph) -> bool {
        Arc::ptr_eq(&self.targets, &other.targets)
    }

    /// A physically independent copy — the `O(n + m)` cost the pre-COW
    /// publish path paid per generation; kept for baselines and benchmarks.
    pub fn deep_clone(&self) -> Self {
        Self {
            offsets: Arc::from(&self.offsets[..]),
            targets: Arc::from(&self.targets[..]),
            weights: self.weights.deep_clone(),
            coords: self.coords.as_ref().map(|c| Arc::from(&c[..])),
            num_edges: self.num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::types::EdgeUpdate;

    fn triangle() -> super::CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 20);
        b.add_edge(0, 2, 40);
        b.build()
    }

    #[test]
    fn sizes() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_sorted_and_weighted() {
        let g = triangle();
        let ns: Vec<_> = g.neighbors(0).collect();
        assert_eq!(ns, vec![(1, 10), (2, 40)]);
        let (ts, ws) = g.neighbor_slices(1);
        assert_eq!(ts, &[0, 2]);
        assert_eq!(ws, &[10, 20]);
    }

    #[test]
    fn weight_lookup_and_update() {
        let mut g = triangle();
        assert_eq!(g.weight(0, 2), Some(40));
        assert_eq!(g.weight(2, 0), Some(40));
        assert_eq!(g.weight(0, 0), None);
        let old = g.set_weight(0, 2, 5).unwrap();
        assert_eq!(old, 40);
        assert_eq!(g.weight(0, 2), Some(5));
        assert_eq!(g.weight(2, 0), Some(5));
    }

    #[test]
    fn update_errors() {
        let mut g = triangle();
        assert!(g.set_weight(0, 7, 1).is_err());
        assert!(g.set_weight(9, 0, 1).is_err());
        assert!(matches!(g.set_weight(1, 1, 1), Err(crate::GraphError::NoSuchEdge(1, 1))));
    }

    #[test]
    fn batch_updates_return_old_weights() {
        let mut g = triangle();
        let olds =
            g.apply_updates(&[EdgeUpdate::new(0, 1, 11), EdgeUpdate::new(1, 2, 21)]).unwrap();
        assert_eq!(olds, vec![10, 20]);
        assert_eq!(g.weight(0, 1), Some(11));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle();
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1, 10), (0, 2, 40), (1, 2, 20)]);
    }

    #[test]
    fn coords_roundtrip() {
        let mut g = triangle();
        assert!(g.coords().is_none());
        g.set_coords(vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        assert_eq!(g.coords().unwrap()[2], (0.0, 1.0));
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangle();
        assert!(g.memory_bytes() >= 6 * 4 + 6 * 4 + 4 * 4);
    }

    #[test]
    fn weight_sum_bound_exceeds_any_path() {
        let g = triangle();
        assert!(g.weight_sum_bound() >= 10 + 20 + 40);
    }

    #[test]
    fn clone_is_cow_not_deep() {
        let mut g = triangle();
        let snap = g.clone();
        assert!(g.shares_topology(&snap));
        assert_eq!(g.shared_weight_chunks(&snap), g.num_weight_chunks());
        g.set_weight(0, 1, 3).unwrap();
        // The write promoted the touched chunk(s); the snapshot is unchanged.
        assert_eq!(snap.weight(0, 1), Some(10));
        assert_eq!(g.weight(0, 1), Some(3));
        assert!(g.cow_stats().bytes_copied > 0);
        let drained = g.take_cow_stats();
        assert_eq!(
            drained.chunks_copied as usize,
            g.num_weight_chunks() - g.shared_weight_chunks(&snap)
        );
        assert_eq!(g.cow_stats(), crate::cow::CowStats::default());
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let g = triangle();
        let d = g.deep_clone();
        assert!(!g.shares_topology(&d));
        assert_eq!(g.shared_weight_chunks(&d), 0);
        assert_eq!(d.weight(1, 2), Some(20));
    }

    #[test]
    fn weight_compaction_preserves_queries_and_cow() {
        let mut g = triangle();
        assert!(!g.weights_flat());
        assert!(g.compact_weights() > 0);
        assert!(g.weights_flat());
        assert_eq!(g.weight(0, 2), Some(40));
        let snap = g.clone();
        g.set_weight(0, 1, 3).unwrap();
        assert!(!g.weights_flat(), "write un-flattens the writer");
        assert!(snap.weights_flat(), "held snapshot stays flat");
        assert_eq!(snap.weight(0, 1), Some(10));
        assert_eq!(g.weight(0, 1), Some(3));
        assert_eq!(g.cow_stats().compactions, 1);
    }
}
