//! Edge-list ingestion and CSR construction.

use crate::csr::CsrGraph;
use crate::types::{VertexId, Weight};

/// Accumulates undirected edges, then builds a [`CsrGraph`].
///
/// * Self-loops are ignored (they never lie on a shortest path with
///   non-negative weights).
/// * Parallel edges are merged keeping the minimum weight, matching how the
///   DIMACS road graphs are normalised in the literature.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// Builder for a graph with `n` vertices (`0..n`).
    pub fn new(n: usize) -> Self {
        Self { n, edges: Vec::new() }
    }

    /// Builder with an edge-capacity hint.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self { n, edges: Vec::with_capacity(m) }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Add the undirected edge `{u, v}` with weight `w`.
    ///
    /// Panics in debug builds if an endpoint is out of range; self-loops are
    /// silently dropped.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        debug_assert!((u as usize) < self.n, "vertex {u} out of range");
        debug_assert!((v as usize) < self.n, "vertex {v} out of range");
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Bulk-add edges.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (VertexId, VertexId, Weight)>) {
        for (u, v, w) in it {
            self.add_edge(u, v, w);
        }
    }

    /// Number of edges added so far (before de-duplication).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Build the CSR graph, de-duplicating parallel edges (minimum weight).
    pub fn build(mut self) -> CsrGraph {
        // De-duplicate: sort canonical pairs, keep min weight.
        self.edges.sort_unstable();
        self.edges.dedup_by(|next, kept| {
            if next.0 == kept.0 && next.1 == kept.1 {
                kept.2 = kept.2.min(next.2);
                true
            } else {
                false
            }
        });
        let m = self.edges.len();
        let n = self.n;

        // Counting sort into CSR with both arc directions.
        let mut degree = vec![0u32; n + 1];
        for &(u, v, _) in &self.edges {
            degree[u as usize + 1] += 1;
            degree[v as usize + 1] += 1;
        }
        for i in 0..n {
            degree[i + 1] += degree[i];
        }
        let offsets = degree; // now prefix sums: offsets[v]..offsets[v+1]
        let total = offsets[n] as usize;
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; total];
        let mut weights = vec![0 as Weight; total];
        for &(u, v, w) in &self.edges {
            let cu = cursor[u as usize] as usize;
            targets[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            targets[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        // Edges were sorted by (u, v) so each vertex's out-list is sorted for
        // arcs coming from the `u` role; arcs from the `v` role arrive in
        // sorted `u` order too, but interleaved. Re-sort each bucket.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            // Small buckets: insertion-style sort via index pairing.
            let mut pairs: Vec<(VertexId, Weight)> =
                targets[lo..hi].iter().copied().zip(weights[lo..hi].iter().copied()).collect();
            pairs.sort_unstable_by_key(|&(t, _)| t);
            for (i, (t, w)) in pairs.into_iter().enumerate() {
                targets[lo + i] = t;
                weights[lo + i] = w;
            }
        }
        CsrGraph::from_parts(offsets.into_boxed_slice(), targets.into_boxed_slice(), weights, m)
    }
}

/// Build a graph directly from an edge list.
pub fn from_edges(
    n: usize,
    edges: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    b.extend_edges(edges);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_min_weight() {
        let g = from_edges(2, vec![(0, 1, 9), (1, 0, 4), (0, 1, 7)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(0, 1), Some(4));
    }

    #[test]
    fn self_loops_dropped() {
        let g = from_edges(2, vec![(0, 0, 1), (0, 1, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = from_edges(5, vec![(0, 1, 1)]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(3).count(), 0);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let g = from_edges(6, vec![(3, 5, 1), (3, 1, 2), (3, 4, 3), (3, 0, 4), (3, 2, 5)]);
        let ts: Vec<_> = g.neighbors(3).map(|(t, _)| t).collect();
        assert_eq!(ts, vec![0, 1, 2, 4, 5]);
        assert_eq!(g.weight(3, 0), Some(4));
        assert_eq!(g.weight(3, 5), Some(1));
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn larger_random_graph_consistent() {
        // Deterministic pseudo-random edges; validate arc symmetry.
        let n = 200usize;
        let mut edges = Vec::new();
        let mut state = 12345u64;
        for _ in 0..1000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 16) % n as u64) as VertexId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((state >> 16) % n as u64) as VertexId;
            let w = ((state >> 40) % 1000 + 1) as Weight;
            edges.push((u, v, w));
        }
        let g = from_edges(n, edges);
        for (u, v, w) in g.edges() {
            assert_eq!(g.weight(v, u), Some(w), "arc symmetry broken at ({u},{v})");
        }
        let arc_count: usize = (0..n as VertexId).map(|v| g.degree(v)).sum();
        assert_eq!(arc_count, 2 * g.num_edges());
    }
}
