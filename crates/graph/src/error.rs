//! Error types for graph construction and IO.

use std::fmt;

/// Errors produced by graph construction, mutation and IO.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying IO failure while reading or writing a graph file.
    Io(std::io::Error),
    /// A line of a DIMACS file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// A vertex id was out of range for the graph.
    InvalidVertex(crate::VertexId),
    /// The requested pair of vertices is not connected by an edge.
    NoSuchEdge(crate::VertexId, crate::VertexId),
    /// The edge list was empty or produced an empty graph.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::InvalidVertex(v) => write!(f, "vertex {v} out of range"),
            GraphError::NoSuchEdge(u, v) => write!(f, "no edge between {u} and {v}"),
            GraphError::EmptyGraph => write!(f, "graph has no vertices"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GraphError::Parse { line: 7, msg: "bad token".into() };
        assert_eq!(e.to_string(), "parse error at line 7: bad token");
        assert_eq!(GraphError::InvalidVertex(9).to_string(), "vertex 9 out of range");
        assert_eq!(GraphError::NoSuchEdge(1, 2).to_string(), "no edge between 1 and 2");
        assert_eq!(GraphError::EmptyGraph.to_string(), "graph has no vertices");
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
