//! Update workloads: the batch protocol of §7 ("Test input generation").
//!
//! For each batch, the harness first **increases** each sampled edge's
//! weight to `factor × φ` and then **decreases** (restores) it to `φ`,
//! measuring both directions. Figure 8 varies `factor` from 2 to 10.
//!
//! [`hotspot_batches`] additionally generates **tree-targeted** streams for
//! the tree-sharded repair path: updates concentrated in the `k` stable
//! trees owning the most edges (an incident, e.g. one closed bridge ramp —
//! the worst case for sharding, all work lands on few shards) versus
//! uniformly scattered (city-wide rush hour — the best case). Both reuse
//! the mixed-trace congestion ledger so decreases are real recoveries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stl_graph::hash::FxHashSet;
use stl_graph::{CsrGraph, EdgeUpdate, VertexId, Weight, INF};

/// One sampled update target: an edge and its original weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateTarget {
    /// Edge endpoint.
    pub a: VertexId,
    /// Edge endpoint.
    pub b: VertexId,
    /// The weight before any update (restored by the decrease phase).
    pub original: Weight,
}

/// Sample `batches` batches of `per_batch` distinct finite-weight edges.
pub fn sample_batches(
    g: &CsrGraph,
    batches: usize,
    per_batch: usize,
    seed: u64,
) -> Vec<Vec<UpdateTarget>> {
    let edges: Vec<(VertexId, VertexId, Weight)> =
        g.edges().filter(|&(_, _, w)| w != INF).collect();
    assert!(!edges.is_empty(), "graph has no updatable edges");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| {
            let mut picked = std::collections::HashSet::new();
            let mut batch = Vec::with_capacity(per_batch);
            // Reject duplicates within a batch (the paper's batches are
            // sampled without replacement).
            let mut guard = 0;
            while batch.len() < per_batch && guard < per_batch * 50 {
                guard += 1;
                let (a, b, w) = edges[rng.random_range(0..edges.len())];
                if picked.insert((a, b)) {
                    batch.push(UpdateTarget { a, b, original: w });
                }
            }
            batch
        })
        .collect()
}

/// The increase phase: each edge goes to `factor × original` (capped).
pub fn increase_batch(targets: &[UpdateTarget], factor: u32) -> Vec<EdgeUpdate> {
    targets
        .iter()
        .map(|t| EdgeUpdate::new(t.a, t.b, t.original.saturating_mul(factor).min(INF - 1)))
        .collect()
}

/// The restore phase: each edge returns to its original weight.
pub fn restore_batch(targets: &[UpdateTarget]) -> Vec<EdgeUpdate> {
    targets.iter().map(|t| EdgeUpdate::new(t.a, t.b, t.original)).collect()
}

/// Parameters for [`hotspot_batches`].
#[derive(Debug, Clone)]
pub struct HotspotConfig {
    /// Number of batches to generate.
    pub batches: usize,
    /// Updates per batch (sampled with replacement, like mixed traces).
    pub batch_size: usize,
    /// Concentrate sampling in this many stable trees — the ones owning the
    /// most edges. `0` means uniformly scattered over the whole network.
    pub hot_trees: usize,
    /// Congestion factor range, inclusive (§7 varies 2..=10).
    pub min_factor: u32,
    /// Upper end of the factor range, inclusive.
    pub max_factor: u32,
    /// RNG seed; equal configs over equal graphs yield identical batches.
    pub seed: u64,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        Self {
            batches: 16,
            batch_size: 16,
            hot_trees: 0,
            min_factor: 2,
            max_factor: 10,
            seed: 0x407,
        }
    }
}

/// Seeded update batches targeted at stable trees.
///
/// `tree_of_edge` assigns each edge to its owning tree (shard) — pass
/// `stl_core::Hierarchy::tree_of_edge` of the index under test; taking a
/// closure keeps this crate independent of the index stack. With
/// `cfg.hot_trees == 0` edges are sampled uniformly; otherwise only from the
/// `hot_trees` trees owning the most finite edges (ties broken by tree id,
/// so the choice is deterministic). Weights follow the mixed-trace
/// congestion ledger: a sampled edge is congested to `factor × original`,
/// or restored to `original` if it is currently congested (coin flip) —
/// replaying batches in order always yields valid mixed batches.
pub fn hotspot_batches(
    g: &CsrGraph,
    tree_of_edge: impl Fn(VertexId, VertexId) -> u32,
    cfg: &HotspotConfig,
) -> Vec<Vec<EdgeUpdate>> {
    assert!(cfg.batch_size >= 1 && cfg.min_factor >= 2 && cfg.min_factor <= cfg.max_factor);
    let mut edges: Vec<(VertexId, VertexId, Weight)> =
        g.edges().filter(|&(_, _, w)| w != INF).collect();
    assert!(!edges.is_empty(), "graph has no updatable edges");
    if cfg.hot_trees > 0 {
        let mut per_tree: Vec<(u32, usize)> = Vec::new();
        for &(a, b, _) in &edges {
            let t = tree_of_edge(a, b);
            match per_tree.binary_search_by_key(&t, |&(id, _)| id) {
                Ok(i) => per_tree[i].1 += 1,
                Err(i) => per_tree.insert(i, (t, 1)),
            }
        }
        per_tree.sort_by_key(|&(id, count)| (std::cmp::Reverse(count), id));
        per_tree.truncate(cfg.hot_trees);
        let hot: FxHashSet<u32> = per_tree.into_iter().map(|(id, _)| id).collect();
        edges.retain(|&(a, b, _)| hot.contains(&tree_of_edge(a, b)));
        assert!(!edges.is_empty(), "hot trees own no updatable edges");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut congested: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    (0..cfg.batches)
        .map(|_| {
            (0..cfg.batch_size)
                .map(|_| {
                    let (a, b, original) = edges[rng.random_range(0..edges.len())];
                    if congested.contains(&(a, b)) && rng.random_bool(0.5) {
                        congested.remove(&(a, b));
                        EdgeUpdate::new(a, b, original)
                    } else {
                        let f = rng.random_range(cfg.min_factor..=cfg.max_factor);
                        congested.insert((a, b));
                        EdgeUpdate::new(a, b, original.saturating_mul(f).min(INF - 1))
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roadnet::{generate, RoadNetConfig};

    #[test]
    fn batches_have_requested_shape() {
        let g = generate(&RoadNetConfig::sized(500, 2));
        let batches = sample_batches(&g, 4, 25, 7);
        assert_eq!(batches.len(), 4);
        for b in &batches {
            assert_eq!(b.len(), 25);
            // No duplicate edges within a batch.
            let mut keys: Vec<_> = b.iter().map(|t| (t.a, t.b)).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), 25);
        }
    }

    #[test]
    fn targets_match_graph_weights() {
        let g = generate(&RoadNetConfig::sized(300, 4));
        for b in sample_batches(&g, 2, 10, 1) {
            for t in b {
                assert_eq!(g.weight(t.a, t.b), Some(t.original));
            }
        }
    }

    #[test]
    fn increase_then_restore_roundtrip() {
        let g = generate(&RoadNetConfig::sized(300, 6));
        let batch = &sample_batches(&g, 1, 10, 3)[0];
        let inc = increase_batch(batch, 2);
        let res = restore_batch(batch);
        for (t, (i, r)) in batch.iter().zip(inc.iter().zip(&res)) {
            assert_eq!(i.new_weight, t.original * 2);
            assert_eq!(r.new_weight, t.original);
        }
    }

    #[test]
    fn factor_capped_below_inf() {
        let targets = [UpdateTarget { a: 0, b: 1, original: INF - 2 }];
        let inc = increase_batch(&targets, 10);
        assert!(inc[0].new_weight < INF);
    }

    #[test]
    fn deterministic_sampling() {
        let g = generate(&RoadNetConfig::sized(300, 8));
        assert_eq!(sample_batches(&g, 2, 5, 9), sample_batches(&g, 2, 5, 9));
    }

    /// A fake tree map for hotspot tests: vertex id ranges as "trees".
    fn fake_tree(n: u32) -> impl Fn(VertexId, VertexId) -> u32 {
        move |a: VertexId, b: VertexId| a.min(b) * 8 / n
    }

    #[test]
    fn hotspot_batches_deterministic_and_shaped() {
        let g = generate(&RoadNetConfig::sized(400, 5));
        let cfg = HotspotConfig { batches: 3, batch_size: 7, ..Default::default() };
        let a = hotspot_batches(&g, fake_tree(400), &cfg);
        let b = hotspot_batches(&g, fake_tree(400), &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|batch| batch.len() == 7));
    }

    #[test]
    fn hotspot_batches_concentrate_in_hot_trees() {
        let g = generate(&RoadNetConfig::sized(400, 6));
        let tree = fake_tree(400);
        let cfg = HotspotConfig { batches: 8, batch_size: 10, hot_trees: 2, ..Default::default() };
        let mut trees_hit: Vec<u32> =
            hotspot_batches(&g, &tree, &cfg).iter().flatten().map(|u| tree(u.a, u.b)).collect();
        trees_hit.sort_unstable();
        trees_hit.dedup();
        assert!(trees_hit.len() <= 2, "hotspot stream leaked into {trees_hit:?}");
        // Scattered mode reaches strictly more trees on this graph.
        let scattered = HotspotConfig { hot_trees: 0, ..cfg };
        let mut all: Vec<u32> = hotspot_batches(&g, &tree, &scattered)
            .iter()
            .flatten()
            .map(|u| tree(u.a, u.b))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert!(all.len() > trees_hit.len());
    }

    #[test]
    fn hotspot_ledger_produces_real_restores_and_valid_targets() {
        let g = generate(&RoadNetConfig::sized(300, 9));
        let cfg = HotspotConfig { batches: 40, batch_size: 6, hot_trees: 1, ..Default::default() };
        let batches = hotspot_batches(&g, fake_tree(300), &cfg);
        let mut restores = 0;
        for u in batches.iter().flatten() {
            let w = g.weight(u.a, u.b).expect("update targets a real edge");
            assert_ne!(w, INF);
            assert_ne!(u.new_weight, INF);
            if u.new_weight == w {
                restores += 1;
            }
        }
        assert!(restores > 0, "long congested streams must contain recoveries");
    }
}
