//! Update workloads: the batch protocol of §7 ("Test input generation").
//!
//! For each batch, the harness first **increases** each sampled edge's
//! weight to `factor × φ` and then **decreases** (restores) it to `φ`,
//! measuring both directions. Figure 8 varies `factor` from 2 to 10.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stl_graph::{CsrGraph, EdgeUpdate, VertexId, Weight, INF};

/// One sampled update target: an edge and its original weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateTarget {
    /// Edge endpoint.
    pub a: VertexId,
    /// Edge endpoint.
    pub b: VertexId,
    /// The weight before any update (restored by the decrease phase).
    pub original: Weight,
}

/// Sample `batches` batches of `per_batch` distinct finite-weight edges.
pub fn sample_batches(
    g: &CsrGraph,
    batches: usize,
    per_batch: usize,
    seed: u64,
) -> Vec<Vec<UpdateTarget>> {
    let edges: Vec<(VertexId, VertexId, Weight)> =
        g.edges().filter(|&(_, _, w)| w != INF).collect();
    assert!(!edges.is_empty(), "graph has no updatable edges");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| {
            let mut picked = std::collections::HashSet::new();
            let mut batch = Vec::with_capacity(per_batch);
            // Reject duplicates within a batch (the paper's batches are
            // sampled without replacement).
            let mut guard = 0;
            while batch.len() < per_batch && guard < per_batch * 50 {
                guard += 1;
                let (a, b, w) = edges[rng.random_range(0..edges.len())];
                if picked.insert((a, b)) {
                    batch.push(UpdateTarget { a, b, original: w });
                }
            }
            batch
        })
        .collect()
}

/// The increase phase: each edge goes to `factor × original` (capped).
pub fn increase_batch(targets: &[UpdateTarget], factor: u32) -> Vec<EdgeUpdate> {
    targets
        .iter()
        .map(|t| EdgeUpdate::new(t.a, t.b, t.original.saturating_mul(factor).min(INF - 1)))
        .collect()
}

/// The restore phase: each edge returns to its original weight.
pub fn restore_batch(targets: &[UpdateTarget]) -> Vec<EdgeUpdate> {
    targets.iter().map(|t| EdgeUpdate::new(t.a, t.b, t.original)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roadnet::{generate, RoadNetConfig};

    #[test]
    fn batches_have_requested_shape() {
        let g = generate(&RoadNetConfig::sized(500, 2));
        let batches = sample_batches(&g, 4, 25, 7);
        assert_eq!(batches.len(), 4);
        for b in &batches {
            assert_eq!(b.len(), 25);
            // No duplicate edges within a batch.
            let mut keys: Vec<_> = b.iter().map(|t| (t.a, t.b)).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), 25);
        }
    }

    #[test]
    fn targets_match_graph_weights() {
        let g = generate(&RoadNetConfig::sized(300, 4));
        for b in sample_batches(&g, 2, 10, 1) {
            for t in b {
                assert_eq!(g.weight(t.a, t.b), Some(t.original));
            }
        }
    }

    #[test]
    fn increase_then_restore_roundtrip() {
        let g = generate(&RoadNetConfig::sized(300, 6));
        let batch = &sample_batches(&g, 1, 10, 3)[0];
        let inc = increase_batch(batch, 2);
        let res = restore_batch(batch);
        for (t, (i, r)) in batch.iter().zip(inc.iter().zip(&res)) {
            assert_eq!(i.new_weight, t.original * 2);
            assert_eq!(r.new_weight, t.original);
        }
    }

    #[test]
    fn factor_capped_below_inf() {
        let targets = [UpdateTarget { a: 0, b: 1, original: INF - 2 }];
        let inc = increase_batch(&targets, 10);
        assert!(inc[0].new_weight < INF);
    }

    #[test]
    fn deterministic_sampling() {
        let g = generate(&RoadNetConfig::sized(300, 8));
        assert_eq!(sample_batches(&g, 2, 5, 9), sample_batches(&g, 2, 5, 9));
    }
}
