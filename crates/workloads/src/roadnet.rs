//! Synthetic road-network generator.
//!
//! Produces perturbed grid networks: 4-connected grids with random travel
//! times, occasional diagonals (shortcutting local streets), random street
//! deletions (city blocks are not perfect lattices), periodic fast
//! "highway" rows/columns, and optional pre-declared closed roads at `INF`
//! weight (the §8 insertion model). Coordinates are attached for inertial
//! partitioning and A*. The largest connected component is returned, so the
//! vertex count is approximately `target_vertices`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stl_graph::components::largest_component;
use stl_graph::{CsrGraph, GraphBuilder, Weight, INF};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct RoadNetConfig {
    /// Approximate number of vertices (exact before deletions).
    pub target_vertices: usize,
    /// RNG seed; equal configs generate identical networks.
    pub seed: u64,
    /// Probability of adding a diagonal edge per grid cell.
    pub diagonal_prob: f64,
    /// Probability of deleting each street edge.
    pub deletion_prob: f64,
    /// Travel-time range for ordinary streets (≈ metres of length).
    pub min_weight: Weight,
    /// Upper bound (inclusive-exclusive) for street weights.
    pub max_weight: Weight,
    /// Every `highway_period`-th row/column is an arterial with weights
    /// divided by 4 (creates the long-range shortcuts real networks have).
    pub highway_period: u32,
    /// Probability of adding a closed road (`INF` weight) per cell.
    pub closed_road_prob: f64,
}

impl Default for RoadNetConfig {
    fn default() -> Self {
        Self {
            target_vertices: 4096,
            seed: 0xC0FFEE,
            diagonal_prob: 0.08,
            deletion_prob: 0.06,
            min_weight: 120,
            max_weight: 2400,
            highway_period: 16,
            closed_road_prob: 0.0,
        }
    }
}

impl RoadNetConfig {
    /// Config producing roughly `n` vertices with the given seed.
    pub fn sized(n: usize, seed: u64) -> Self {
        Self { target_vertices: n, seed, ..Self::default() }
    }
}

/// Generate a road network (largest component, with coordinates).
pub fn generate(cfg: &RoadNetConfig) -> CsrGraph {
    assert!(cfg.target_vertices >= 1);
    assert!(cfg.min_weight < cfg.max_weight);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let width = (cfg.target_vertices as f64).sqrt().ceil() as u32;
    let height = cfg.target_vertices.div_ceil(width as usize) as u32;
    let n = (width * height) as usize;
    let idx = |x: u32, y: u32| y * width + x;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let street = |rng: &mut StdRng, fast: bool| -> Weight {
        let w = rng.random_range(cfg.min_weight..cfg.max_weight);
        if fast {
            (w / 4).max(1)
        } else {
            w
        }
    };
    for y in 0..height {
        for x in 0..width {
            let fast_row = cfg.highway_period > 0 && y % cfg.highway_period == 0;
            let fast_col = cfg.highway_period > 0 && x % cfg.highway_period == 0;
            if x + 1 < width && !rng.random_bool(cfg.deletion_prob) {
                b.add_edge(idx(x, y), idx(x + 1, y), street(&mut rng, fast_row));
            }
            if y + 1 < height && !rng.random_bool(cfg.deletion_prob) {
                b.add_edge(idx(x, y), idx(x, y + 1), street(&mut rng, fast_col));
            }
            if x + 1 < width && y + 1 < height {
                if rng.random_bool(cfg.diagonal_prob) {
                    // Diagonals are √2 longer on average.
                    let w = street(&mut rng, false);
                    b.add_edge(idx(x, y), idx(x + 1, y + 1), w + w / 2);
                }
                if cfg.closed_road_prob > 0.0 && rng.random_bool(cfg.closed_road_prob) {
                    b.add_edge(idx(x + 1, y), idx(x, y + 1), INF);
                }
            }
        }
    }
    let mut g = b.build();
    g.set_coords((0..n as u32).map(|i| ((i % width) as f32, (i / width) as f32)).collect());
    let (largest, _) = largest_component(&g);
    largest
}

#[cfg(test)]
mod tests {
    use super::*;
    use stl_graph::components::is_connected;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = RoadNetConfig::sized(500, 42);
        let g1 = generate(&cfg);
        let g2 = generate(&cfg);
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert!(g1.edges().zip(g2.edges()).all(|(a, b)| a == b));
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = generate(&RoadNetConfig::sized(500, 1));
        let g2 = generate(&RoadNetConfig::sized(500, 2));
        assert!(
            g1.num_edges() != g2.num_edges() || g1.edges().zip(g2.edges()).any(|(a, b)| a != b)
        );
    }

    #[test]
    fn connected_and_near_target_size() {
        let g = generate(&RoadNetConfig::sized(2000, 7));
        assert!(is_connected(&g));
        assert!(g.num_vertices() >= 1700, "lost too many vertices: {}", g.num_vertices());
        assert!(g.num_vertices() <= 2100);
    }

    #[test]
    fn road_like_density() {
        let g = generate(&RoadNetConfig::sized(3000, 3));
        let avg_degree = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((1.5..5.0).contains(&avg_degree), "avg degree {avg_degree} not road-like");
        assert!(g.max_degree() <= 12);
    }

    #[test]
    fn weights_in_range() {
        let cfg = RoadNetConfig { closed_road_prob: 0.0, ..RoadNetConfig::sized(1000, 9) };
        let g = generate(&cfg);
        for (_, _, w) in g.edges() {
            assert!(w >= 1 && w < cfg.max_weight + cfg.max_weight / 2, "weight {w} out of range");
        }
    }

    #[test]
    fn closed_roads_present_when_requested() {
        let cfg = RoadNetConfig {
            closed_road_prob: 0.3,
            deletion_prob: 0.0,
            ..RoadNetConfig::sized(1000, 11)
        };
        let g = generate(&cfg);
        let closed = g.edges().filter(|&(_, _, w)| w == INF).count();
        assert!(closed > 10, "expected many closed roads, got {closed}");
    }

    #[test]
    fn coordinates_attached() {
        let g = generate(&RoadNetConfig::sized(400, 5));
        assert_eq!(g.coords().unwrap().len(), g.num_vertices());
    }

    #[test]
    fn tiny_network_generates() {
        let g = generate(&RoadNetConfig::sized(1, 0));
        assert!(g.num_vertices() >= 1);
    }
}
