//! Named datasets mirroring Table 2 of the paper.
//!
//! Ten synthetic road networks whose *relative* sizes follow the paper's
//! datasets (NY … EUR). Absolute sizes are laptop-scale by default and grow
//! with [`Scale`]; the experiment harness reports whatever scale it ran.

use stl_graph::CsrGraph;

use crate::roadnet::{generate, RoadNetConfig};

/// Experiment scale: multiplies every dataset's vertex budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sizes (hundreds of vertices).
    Tiny,
    /// Quick runs (a few thousand vertices per dataset).
    Small,
    /// Default benchmarking scale.
    Default,
    /// Stress scale (largest dataset ≈ 150k vertices).
    Large,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    fn multiplier(self) -> f64 {
        match self {
            Scale::Tiny => 0.05,
            Scale::Small => 0.3,
            Scale::Default => 1.0,
            Scale::Large => 2.2,
        }
    }
}

/// A named dataset: paper name, region and base vertex budget.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Short name used in the paper's tables.
    pub name: &'static str,
    /// Region the original dataset covers.
    pub region: &'static str,
    /// Vertex budget at `Scale::Default`.
    pub base_vertices: usize,
    /// Generator seed (per-dataset, fixed).
    pub seed: u64,
}

/// The ten datasets of Table 2 with paper-proportional size ordering.
pub const DATASETS: [DatasetSpec; 10] = [
    DatasetSpec { name: "NY", region: "New York City", base_vertices: 6_000, seed: 101 },
    DatasetSpec { name: "BAY", region: "San Francisco", base_vertices: 7_200, seed: 102 },
    DatasetSpec { name: "COL", region: "Colorado", base_vertices: 9_600, seed: 103 },
    DatasetSpec { name: "FLA", region: "Florida", base_vertices: 14_000, seed: 104 },
    DatasetSpec { name: "CAL", region: "California", base_vertices: 20_000, seed: 105 },
    DatasetSpec { name: "E", region: "Eastern USA", base_vertices: 28_000, seed: 106 },
    DatasetSpec { name: "W", region: "Western USA", base_vertices: 38_000, seed: 107 },
    DatasetSpec { name: "CTR", region: "Central USA", base_vertices: 52_000, seed: 108 },
    DatasetSpec { name: "USA", region: "United States", base_vertices: 70_000, seed: 109 },
    DatasetSpec { name: "EUR", region: "Western Europe", base_vertices: 62_000, seed: 110 },
];

/// Build a named dataset at the given scale. Panics on unknown names.
pub fn build_dataset(name: &str, scale: Scale) -> CsrGraph {
    let spec = DATASETS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("unknown dataset '{name}'"));
    let n = ((spec.base_vertices as f64) * scale.multiplier()).round().max(16.0) as usize;
    generate(&RoadNetConfig::sized(n, spec.seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_at_tiny_scale() {
        for spec in DATASETS {
            let g = build_dataset(spec.name, Scale::Tiny);
            assert!(g.num_vertices() > 0, "{} empty", spec.name);
            assert!(stl_graph::components::is_connected(&g));
        }
    }

    #[test]
    fn sizes_monotone_in_scale() {
        let a = build_dataset("NY", Scale::Tiny).num_vertices();
        let b = build_dataset("NY", Scale::Small).num_vertices();
        assert!(a < b);
    }

    #[test]
    fn dataset_order_matches_paper_sizes() {
        // NY smallest, USA largest among US sets; EUR below USA (Table 2).
        let sizes: Vec<usize> = DATASETS.iter().map(|d| d.base_vertices).collect();
        assert!(sizes.windows(2).take(8).all(|w| w[0] < w[1]));
        let usa = DATASETS.iter().find(|d| d.name == "USA").unwrap().base_vertices;
        let eur = DATASETS.iter().find(|d| d.name == "EUR").unwrap().base_vertices;
        assert!(eur < usa);
    }

    #[test]
    fn case_insensitive_lookup() {
        let g = build_dataset("ny", Scale::Tiny);
        assert!(g.num_vertices() > 0);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        build_dataset("MARS", Scale::Tiny);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
    }
}
