//! Open-loop (arrival-rate driven) load generation.
//!
//! A closed-loop client sends its next request only after the previous one
//! answers, so an overloaded server quietly slows the *offered* load down and
//! latency percentiles look flat. An **open-loop** workload decouples the
//! two: requests arrive on a Poisson process at a target rate regardless of
//! how the server is doing, which is what exposes queueing delay, admission
//! sheds, and p99 blow-up under overload — the regime `stl bench-net` and
//! the `net` bench measure.
//!
//! The trace is pure data: each [`Arrival`] pairs a [`MixedOp`] (from the
//! same congestion-ledger generator as [`mixed_trace`]) with an absolute
//! **offset** from the start of the run. A driver replays it by sleeping
//! until each offset and firing the op — if the server is behind, the
//! arrivals keep coming and the lag shows up as latency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stl_graph::CsrGraph;

use crate::mixed::{mixed_trace, MixedConfig, MixedOp};

use std::time::Duration;

/// Open-loop trace parameters.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Target arrival rate, requests per second (the Poisson intensity λ).
    pub rate_per_sec: f64,
    /// Op mix: count, update fraction, batch size, congestion factors, seed.
    pub mixed: MixedConfig,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self { rate_per_sec: 1_000.0, mixed: MixedConfig::default() }
    }
}

/// One scheduled request of an open-loop trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// When this request enters the system, measured from the trace start.
    pub offset: Duration,
    /// The request itself.
    pub op: MixedOp,
}

/// Draw `Uniform(0, 1)` — strictly positive so its log is finite — from the
/// vendored integer-only PRNG by scaling a 53-bit draw (the f64 mantissa
/// width, so every value is exact).
fn unit_uniform(rng: &mut StdRng) -> f64 {
    const BITS: u32 = 53;
    let draw = rng.random_range(0u64..(1u64 << BITS));
    (draw as f64 + 0.5) / (1u64 << BITS) as f64
}

/// Generate a seeded open-loop trace over `g`: [`mixed_trace`] ops with
/// exponential inter-arrival gaps (`-ln(U)/λ`), i.e. Poisson arrivals at
/// `rate_per_sec`. Offsets are strictly increasing; equal configs over equal
/// graphs yield identical traces.
pub fn open_loop_trace(g: &CsrGraph, cfg: &OpenLoopConfig) -> Vec<Arrival> {
    assert!(
        cfg.rate_per_sec.is_finite() && cfg.rate_per_sec > 0.0,
        "arrival rate must be positive"
    );
    let ops = mixed_trace(g, &cfg.mixed);
    // Fresh generator, decorrelated from the op stream's seed, so changing
    // the rate never changes which ops are generated.
    let mut rng = StdRng::seed_from_u64(cfg.mixed.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut clock = 0.0f64;
    ops.into_iter()
        .map(|op| {
            clock += -unit_uniform(&mut rng).ln() / cfg.rate_per_sec;
            Arrival { offset: Duration::from_secs_f64(clock), op }
        })
        .collect()
}

/// Nearest-rank percentile (`p` in 0..=100) of a latency sample. Sorts a
/// copy; returns `None` on an empty sample.
pub fn percentile(samples: &[Duration], p: f64) -> Option<Duration> {
    if samples.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roadnet::{generate, RoadNetConfig};

    fn small() -> CsrGraph {
        generate(&RoadNetConfig::sized(300, 5))
    }

    fn cfg(rate: f64, ops: usize, seed: u64) -> OpenLoopConfig {
        OpenLoopConfig {
            rate_per_sec: rate,
            mixed: MixedConfig { ops, update_fraction: 0.1, seed, ..Default::default() },
        }
    }

    #[test]
    fn trace_is_replayable_and_seed_sensitive() {
        let g = small();
        let c = cfg(500.0, 400, 7);
        assert_eq!(open_loop_trace(&g, &c), open_loop_trace(&g, &c));
        assert_ne!(open_loop_trace(&g, &c), open_loop_trace(&g, &cfg(500.0, 400, 8)));
    }

    #[test]
    fn offsets_increase_and_ops_match_the_mixed_trace() {
        let g = small();
        let c = cfg(2_000.0, 600, 3);
        let trace = open_loop_trace(&g, &c);
        assert_eq!(trace.len(), 600);
        for pair in trace.windows(2) {
            assert!(pair[0].offset < pair[1].offset, "offsets must strictly increase");
        }
        // The op stream is exactly mixed_trace: rate shapes timing only.
        let ops: Vec<MixedOp> = trace.into_iter().map(|a| a.op).collect();
        assert_eq!(ops, mixed_trace(&g, &c.mixed));
        let faster = open_loop_trace(&g, &cfg(20_000.0, 600, 3));
        let slower_ops: Vec<MixedOp> = faster.into_iter().map(|a| a.op).collect();
        assert_eq!(ops, slower_ops, "changing the rate must not change the ops");
    }

    #[test]
    fn mean_interarrival_tracks_the_rate() {
        let g = small();
        for rate in [100.0, 5_000.0] {
            let trace = open_loop_trace(&g, &cfg(rate, 4_000, 11));
            let span = trace.last().unwrap().offset.as_secs_f64();
            let empirical = trace.len() as f64 / span;
            // Poisson with n = 4000: the empirical rate lands well within
            // ±10% of λ; this guards the math, not the RNG's quality.
            assert!((empirical / rate - 1.0).abs() < 0.1, "λ = {rate}, empirical = {empirical:.1}");
        }
    }

    #[test]
    fn doubling_the_rate_halves_the_span() {
        let g = small();
        let once = open_loop_trace(&g, &cfg(1_000.0, 2_000, 5));
        let twice = open_loop_trace(&g, &cfg(2_000.0, 2_000, 5));
        let ratio =
            once.last().unwrap().offset.as_secs_f64() / twice.last().unwrap().offset.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "same seed draws the same gaps, scaled: {ratio}");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&samples, 50.0), Some(ms(50)));
        assert_eq!(percentile(&samples, 99.0), Some(ms(99)));
        assert_eq!(percentile(&samples, 100.0), Some(ms(100)));
        assert_eq!(percentile(&samples, 0.0), Some(ms(1)));
        assert_eq!(percentile(&[ms(7)], 99.0), Some(ms(7)));
        assert_eq!(percentile(&[], 50.0), None);
    }
}
