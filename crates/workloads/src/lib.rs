//! Workload generation: synthetic road networks, named datasets, query and
//! update workloads (§7 "Datasets" and "Test input generation").
//!
//! The paper's ten road networks (DIMACS USA + PTV Europe) are not
//! redistributable; [`roadnet`] synthesises networks with the same
//! structural profile (sparse, near-planar, small separators, bounded
//! degree) and [`datasets`] names ten of them after the paper's table so the
//! bench harness prints recognisable rows. Real `.gr` files can be loaded
//! through `stl_graph::io` instead, when available.

pub mod datasets;
pub mod mixed;
pub mod openloop;
pub mod queries;
pub mod roadnet;
pub mod updates;

pub use datasets::{build_dataset, Scale, DATASETS};
pub use mixed::{mixed_trace, split_trace, MixedConfig, MixedOp};
pub use openloop::{open_loop_trace, percentile, Arrival, OpenLoopConfig};
pub use roadnet::{generate, RoadNetConfig};
