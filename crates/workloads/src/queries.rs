//! Query workloads: uniform random pairs and the distance-stratified sets
//! Q1…Q10 of §7 ("Test input generation").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stl_graph::{CsrGraph, Dist, VertexId, INF};
use stl_pathfinding::{bfs, dijkstra};

/// `count` uniform random (s, t) pairs with `s != t` (n ≥ 2).
pub fn random_pairs(n: usize, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let s = rng.random_range(0..n as VertexId);
            let mut t = rng.random_range(0..n as VertexId);
            while t == s {
                t = rng.random_range(0..n as VertexId);
            }
            (s, t)
        })
        .collect()
}

/// Estimate the maximum pairwise distance by double-sweep Dijkstra.
pub fn estimate_lmax(g: &CsrGraph) -> Dist {
    let (far, _) = bfs::pseudo_peripheral(g, 0);
    let d = dijkstra::single_source(g, far);
    d.into_iter().filter(|&x| x != INF).max().unwrap_or(0)
}

/// Generate the stratified query sets `Q1..=Qsets` of §7.
///
/// With `x = (lmax/lmin)^(1/sets)`, set `Q_i` holds pairs whose distance
/// falls in `(lmin·x^(i-1), lmin·x^i]`. Distances are evaluated through the
/// caller-provided `dist` oracle (typically a built index — evaluating 10⁶
/// candidates through Dijkstra would dominate the harness). Sampling stops
/// per set at `per_set` pairs or after the attempt budget.
pub fn stratified_sets(
    g: &CsrGraph,
    dist: impl Fn(VertexId, VertexId) -> Dist,
    lmin: Dist,
    sets: usize,
    per_set: usize,
    seed: u64,
) -> Vec<Vec<(VertexId, VertexId)>> {
    assert!(sets >= 1 && lmin >= 1);
    let n = g.num_vertices();
    let lmax = estimate_lmax(g).max(lmin + 1);
    let x = (lmax as f64 / lmin as f64).powf(1.0 / sets as f64);
    // Bucket upper bounds: lmin·x^i for i in 1..=sets.
    let bounds: Vec<f64> = (1..=sets).map(|i| lmin as f64 * x.powi(i as i32)).collect();
    let mut out: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); sets];
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = per_set * sets * 300;
    let mut filled = 0usize;
    for _ in 0..budget {
        if filled == sets {
            break;
        }
        let s = rng.random_range(0..n as VertexId);
        let t = rng.random_range(0..n as VertexId);
        if s == t {
            continue;
        }
        let d = dist(s, t);
        if d == INF || d <= lmin {
            continue;
        }
        let set = bounds.partition_point(|&b| (d as f64) > b).min(sets - 1);
        if out[set].len() < per_set {
            out[set].push((s, t));
            if out[set].len() == per_set {
                filled += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roadnet::{generate, RoadNetConfig};

    #[test]
    fn random_pairs_in_range_and_distinct() {
        let pairs = random_pairs(50, 200, 9);
        assert_eq!(pairs.len(), 200);
        for (s, t) in pairs {
            assert!(s < 50 && t < 50 && s != t);
        }
    }

    #[test]
    fn random_pairs_deterministic() {
        assert_eq!(random_pairs(100, 50, 3), random_pairs(100, 50, 3));
        assert_ne!(random_pairs(100, 50, 3), random_pairs(100, 50, 4));
    }

    #[test]
    fn lmax_estimate_reasonable() {
        let g = generate(&RoadNetConfig::sized(900, 17));
        let est = estimate_lmax(&g);
        // The estimate is a real pairwise distance, so it lower-bounds the
        // true diameter and exceeds any single edge.
        assert!(est > 1000, "lmax {est} suspiciously small");
    }

    #[test]
    fn stratified_sets_respect_bounds() {
        let g = generate(&RoadNetConfig::sized(900, 21));
        let lmin = 1000;
        let sets = stratified_sets(&g, |s, t| dijkstra::distance(&g, s, t), lmin, 6, 20, 5);
        assert_eq!(sets.len(), 6);
        let lmax = estimate_lmax(&g).max(lmin + 1);
        let x = (lmax as f64 / lmin as f64).powf(1.0 / 6.0);
        for (i, set) in sets.iter().enumerate() {
            assert!(!set.is_empty(), "Q{} empty", i + 1);
            let hi = lmin as f64 * x.powi(i as i32 + 1);
            for &(s, t) in set {
                let d = dijkstra::distance(&g, s, t) as f64;
                assert!(d > lmin as f64, "Q{}: {d} below lmin", i + 1);
                // Pairs in the last set may exceed the estimated lmax
                // (the estimate is a lower bound); others obey their bound.
                if i + 1 < 6 {
                    assert!(d <= hi * 1.0001, "Q{}: {d} above bound {hi}", i + 1);
                }
            }
        }
    }

    #[test]
    fn long_range_sets_have_larger_distances() {
        let g = generate(&RoadNetConfig::sized(900, 23));
        let sets = stratified_sets(&g, |s, t| dijkstra::distance(&g, s, t), 1000, 5, 15, 6);
        let avg = |set: &Vec<(u32, u32)>| {
            set.iter().map(|&(s, t)| dijkstra::distance(&g, s, t) as f64).sum::<f64>()
                / set.len() as f64
        };
        assert!(avg(&sets[4]) > avg(&sets[0]) * 2.0, "stratification not monotone");
    }
}
