//! Mixed query/update traces for the concurrent serving regime.
//!
//! The paper's evaluation interleaves distance queries with traffic-update
//! batches (§7); BatchHL and the dual-hierarchy follow-up measure the same
//! regime explicitly. This module generates such interleaved traces as
//! **data** — a seeded, replayable `Vec<MixedOp>` — so the same workload can
//! be run single-threaded against a bare [`stl_core` index], split across
//! reader threads against `stl_server`, or re-run verbatim from a failure's
//! printed seed.
//!
//! Update batches follow the §7 congestion model: an edge is either
//! *congested* (weight raised to `factor × original`, factor drawn from
//! 2..=10 by default) or *restored* to its original weight; a trace keeps a
//! congestion ledger so decreases are real recoveries, not arbitrary
//! weights. Batches may repeat an edge — the batch driver's normalisation
//! (last-wins) is part of what mixed workloads exercise.
//!
//! [`stl_core` index]: https://docs.rs/stl_core

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stl_graph::hash::FxHashSet;
use stl_graph::{CsrGraph, EdgeUpdate, VertexId, Weight, INF};

/// One step of an interleaved trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedOp {
    /// Answer a distance query `d(s, t)`.
    Query(VertexId, VertexId),
    /// Apply a batch of edge-weight updates.
    Batch(Vec<EdgeUpdate>),
    /// Answer a one-to-many query: distances from the source to every
    /// target, in target order.
    Many(VertexId, Vec<VertexId>),
}

impl MixedOp {
    /// Whether this op is a read (point query or one-to-many).
    pub fn is_query(&self) -> bool {
        matches!(self, MixedOp::Query(_, _) | MixedOp::Many(_, _))
    }
}

/// Trace-generation parameters.
#[derive(Debug, Clone)]
pub struct MixedConfig {
    /// Total number of ops in the trace.
    pub ops: usize,
    /// Fraction of ops that are update batches (the rest are queries).
    pub update_fraction: f64,
    /// Edges sampled per update batch (with replacement — duplicates are
    /// intended, see module docs).
    pub batch_size: usize,
    /// Congestion factor range, inclusive (§7 varies 2..=10).
    pub min_factor: u32,
    /// Upper end of the factor range, inclusive.
    pub max_factor: u32,
    /// Fraction of *read* ops that are one-to-many queries instead of point
    /// queries. At the default `0.0` the generator draws no extra random
    /// numbers, so traces from configs predating this knob are unchanged
    /// byte for byte.
    pub many_fraction: f64,
    /// Targets per one-to-many query.
    pub many_targets: usize,
    /// RNG seed; equal configs over equal graphs yield identical traces.
    pub seed: u64,
}

impl Default for MixedConfig {
    fn default() -> Self {
        Self {
            ops: 10_000,
            update_fraction: 0.01,
            batch_size: 10,
            min_factor: 2,
            max_factor: 10,
            many_fraction: 0.0,
            many_targets: 8,
            seed: 0xD157,
        }
    }
}

/// Generate a seeded interleaved query/update trace over `g`.
///
/// Updates only ever target edges that are finite in `g`, and every produced
/// weight stays below [`INF`], so a trace replayed in submission order is
/// always a valid input to `Stl::apply_batch` / `StlServer::submit`
/// regardless of how queries and batches are scheduled around each other.
pub fn mixed_trace(g: &CsrGraph, cfg: &MixedConfig) -> Vec<MixedOp> {
    assert!(g.num_vertices() >= 2, "need at least two vertices");
    assert!(cfg.batch_size >= 1 && cfg.min_factor >= 2 && cfg.min_factor <= cfg.max_factor);
    assert!((0.0..=1.0).contains(&cfg.update_fraction));
    assert!((0.0..=1.0).contains(&cfg.many_fraction));
    assert!(cfg.many_fraction == 0.0 || cfg.many_targets >= 1);
    let edges: Vec<(VertexId, VertexId, Weight)> =
        g.edges().filter(|&(_, _, w)| w != INF).collect();
    assert!(!edges.is_empty(), "graph has no updatable edges");
    let n = g.num_vertices() as VertexId;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Congestion ledger: edges currently raised above their original weight
    // (the restore weight itself always comes from `edges`).
    let mut congested: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    (0..cfg.ops)
        .map(|_| {
            if rng.random_bool(cfg.update_fraction) {
                let batch = (0..cfg.batch_size)
                    .map(|_| {
                        let (a, b, original) = edges[rng.random_range(0..edges.len())];
                        if congested.contains(&(a, b)) && rng.random_bool(0.5) {
                            congested.remove(&(a, b));
                            EdgeUpdate::new(a, b, original)
                        } else {
                            let f = rng.random_range(cfg.min_factor..=cfg.max_factor);
                            congested.insert((a, b));
                            EdgeUpdate::new(a, b, original.saturating_mul(f).min(INF - 1))
                        }
                    })
                    .collect();
                MixedOp::Batch(batch)
            } else if cfg.many_fraction > 0.0 && rng.random_bool(cfg.many_fraction) {
                // Gated on the fraction *before* drawing, so a 0.0 config
                // consumes the exact RNG stream of the pre-many generator.
                let s = rng.random_range(0..n);
                let targets = (0..cfg.many_targets).map(|_| rng.random_range(0..n)).collect();
                MixedOp::Many(s, targets)
            } else {
                let s = rng.random_range(0..n);
                let mut t = rng.random_range(0..n);
                while t == s {
                    t = rng.random_range(0..n);
                }
                MixedOp::Query(s, t)
            }
        })
        .collect()
}

/// Partition a trace into its point queries and its update batches, each in
/// trace order — the shape `stl_server::replay_mixed` and the test oracles
/// consume when the interleaving itself is driven by threads rather than
/// replayed op-by-op. One-to-many ops are dropped: the thread-driven replay
/// drivers predate them and measure point-query service.
pub fn split_trace(trace: Vec<MixedOp>) -> (Vec<(VertexId, VertexId)>, Vec<Vec<EdgeUpdate>>) {
    let mut queries = Vec::new();
    let mut batches = Vec::new();
    for op in trace {
        match op {
            MixedOp::Query(s, t) => queries.push((s, t)),
            MixedOp::Batch(b) => batches.push(b),
            MixedOp::Many(_, _) => {}
        }
    }
    (queries, batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roadnet::{generate, RoadNetConfig};

    fn small() -> CsrGraph {
        generate(&RoadNetConfig::sized(300, 5))
    }

    #[test]
    fn trace_is_replayable() {
        let g = small();
        let cfg = MixedConfig { ops: 500, update_fraction: 0.1, ..Default::default() };
        assert_eq!(mixed_trace(&g, &cfg), mixed_trace(&g, &cfg));
        let other = MixedConfig { seed: 1, ..cfg };
        assert_ne!(mixed_trace(&g, &cfg), mixed_trace(&g, &other));
    }

    #[test]
    fn ops_count_and_mix() {
        let g = small();
        let cfg = MixedConfig { ops: 4_000, update_fraction: 0.25, ..Default::default() };
        let trace = mixed_trace(&g, &cfg);
        assert_eq!(trace.len(), 4_000);
        let batches = trace.iter().filter(|op| !op.is_query()).count();
        // 0.25 ± generous slack: this guards wiring, not the RNG.
        assert!((600..1400).contains(&batches), "batches = {batches}");
    }

    #[test]
    fn updates_target_existing_finite_edges() {
        let g = generate(&RoadNetConfig { closed_road_prob: 0.05, ..RoadNetConfig::sized(300, 7) });
        let cfg = MixedConfig { ops: 1_000, update_fraction: 0.2, ..Default::default() };
        for op in mixed_trace(&g, &cfg) {
            if let MixedOp::Batch(batch) = op {
                for u in batch {
                    let w = g.weight(u.a, u.b).expect("update targets a real edge");
                    assert_ne!(w, INF, "closed roads must not be sampled");
                    assert_ne!(u.new_weight, INF);
                }
            }
        }
    }

    #[test]
    fn queries_are_valid_pairs() {
        let g = small();
        let cfg = MixedConfig { ops: 1_000, ..Default::default() };
        let n = g.num_vertices() as VertexId;
        for op in mixed_trace(&g, &cfg) {
            if let MixedOp::Query(s, t) = op {
                assert!(s < n && t < n && s != t);
            }
        }
    }

    #[test]
    fn split_trace_preserves_every_op_in_order() {
        let g = small();
        let cfg = MixedConfig { ops: 800, update_fraction: 0.3, ..Default::default() };
        let trace = mixed_trace(&g, &cfg);
        let n_queries = trace.iter().filter(|op| op.is_query()).count();
        let (queries, batches) = split_trace(trace.clone());
        assert_eq!(queries.len(), n_queries);
        assert_eq!(queries.len() + batches.len(), trace.len());
        let replayed: Vec<MixedOp> = trace.into_iter().filter(|op| !op.is_query()).collect();
        for (got, want) in batches.iter().zip(&replayed) {
            assert_eq!(MixedOp::Batch(got.clone()), *want);
        }
    }

    #[test]
    fn many_fraction_zero_leaves_legacy_traces_untouched() {
        let g = small();
        let legacy = MixedConfig { ops: 600, update_fraction: 0.1, ..Default::default() };
        let trace = mixed_trace(&g, &legacy);
        assert!(trace.iter().all(|op| !matches!(op, MixedOp::Many(_, _))));
        // The RNG gate must not consume draws at 0.0: explicit 0.0 equals
        // the default-config stream.
        let explicit = MixedConfig { many_fraction: 0.0, ..legacy.clone() };
        assert_eq!(trace, mixed_trace(&g, &explicit));
    }

    #[test]
    fn many_ops_are_generated_and_valid() {
        let g = small();
        let cfg = MixedConfig {
            ops: 1_000,
            update_fraction: 0.1,
            many_fraction: 0.2,
            many_targets: 5,
            ..Default::default()
        };
        let trace = mixed_trace(&g, &cfg);
        let n = g.num_vertices() as VertexId;
        let many = trace
            .iter()
            .filter(|op| matches!(op, MixedOp::Many(_, _)))
            .inspect(|op| {
                if let MixedOp::Many(s, targets) = op {
                    assert!(*s < n);
                    assert_eq!(targets.len(), 5);
                    assert!(targets.iter().all(|&t| t < n));
                }
            })
            .count();
        assert!((80..320).contains(&many), "many ops = {many}");
        // split_trace drops them but keeps everything else in order.
        let kept = trace.iter().filter(|op| !matches!(op, MixedOp::Many(_, _))).count();
        let (queries, batches) = split_trace(trace);
        assert_eq!(queries.len() + batches.len(), kept);
    }

    #[test]
    fn congestion_ledger_produces_real_restores() {
        let g = small();
        let cfg =
            MixedConfig { ops: 2_000, update_fraction: 0.5, batch_size: 4, ..Default::default() };
        let restores = mixed_trace(&g, &cfg)
            .iter()
            .filter_map(|op| match op {
                MixedOp::Batch(b) => Some(b.clone()),
                _ => None,
            })
            .flatten()
            .filter(|u| g.weight(u.a, u.b) == Some(u.new_weight))
            .count();
        assert!(restores > 0, "long congested traces must contain recoveries");
    }
}
