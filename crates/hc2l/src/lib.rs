//! Hierarchical Cut 2-hop Labelling (HC2L) — the static baseline of §3.2.
//!
//! HC2L differs from STL in two ways the paper leans on:
//!
//! 1. **Shortcut-densified hierarchy.** After each balanced cut, HC2L
//!    contracts the cut into the remaining subgraphs to preserve distances,
//!    which densifies lower levels and *enlarges* subsequent cuts — the
//!    reason Table 4 shows HC2L labels larger than STL's.
//! 2. **Global-distance labels.** `δ_{v,r} = d_G(v, r)` (distance in the
//!    whole graph), not the subgraph distance. That makes queries on short
//!    and medium ranges slightly stronger (Figure 9) but couples every label
//!    to every edge — the reason incremental maintenance is impractical
//!    (§3.2 "Discussion") and HC2L appears only in static columns.
//!
//! Implementation note (DESIGN.md §3): we realise the global-distance labels
//! with **boundary-seeded** restricted Dijkstras instead of materialised
//! shortcut graphs. For a cut vertex `r`, every path leaving `G[Desc(r)]`
//! first exits through an edge `(w, u)` with `w` a strict ancestor of `r`;
//! seeding `u` with `d_G(r, w) + φ(w, u)` (the ancestor's label is already
//! final) makes the restricted search compute exact global distances. This
//! is mathematically equivalent to searching the shortcut-augmented
//! subgraph. Shortcuts *are* materialised during partitioning, where they
//! have the structural effect the paper describes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use stl_core::{Hierarchy, Labels, RawNode, Stl, StlConfig};
use stl_graph::hash::FxHashMap;
use stl_graph::subgraph::induced_subgraph;
use stl_graph::{dist_add, CsrGraph, Dist, GraphBuilder, VertexId, INF};
use stl_partition::find_separator;
use stl_pathfinding::TimestampedArray;

/// A built HC2L index.
#[derive(Debug, Clone)]
pub struct Hc2l {
    /// Internally an `Stl` container (hierarchy + flat labels) whose label
    /// entries hold **global** distances. Static: no update methods.
    index: Stl,
}

impl Hc2l {
    /// Build the HC2L index for `g`.
    pub fn build(g: &CsrGraph, cfg: &StlConfig) -> Self {
        let hier = build_densified_hierarchy(g, cfg);
        let labels = build_global_labels(g, &hier);
        Hc2l { index: Stl::from_parts(hier, labels) }
    }

    /// Distance query (Equation 2): identical scan to STL.
    #[inline]
    pub fn query(&self, s: VertexId, t: VertexId) -> Dist {
        self.index.query(s, t)
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        self.index.hierarchy()
    }

    /// Total label entries.
    pub fn label_entries(&self) -> u64 {
        self.index.labels().num_entries()
    }

    /// Index footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.index.labels().memory_bytes() + self.index.hierarchy().memory_bytes()
    }

    /// Tree height (max label length).
    pub fn height(&self) -> u32 {
        self.index.hierarchy().height()
    }
}

/// Recursive balanced cuts where each frame's subgraph carries the
/// contraction shortcuts of all ancestor cuts.
fn build_densified_hierarchy(g: &CsrGraph, cfg: &StlConfig) -> Hierarchy {
    struct Frame {
        /// Local working graph including inherited shortcuts.
        graph: CsrGraph,
        /// Local id -> global id.
        map: Vec<VertexId>,
        parent: u32,
        side: u8,
        depth: u32,
    }
    let n = g.num_vertices();
    let mut queue: VecDeque<Frame> = VecDeque::new();
    queue.push_back(Frame {
        graph: g.clone(),
        map: (0..n as VertexId).collect(),
        parent: u32::MAX,
        side: 0,
        depth: 0,
    });
    let mut raw: Vec<RawNode> = Vec::new();
    while let Some(frame) = queue.pop_front() {
        let id = raw.len() as u32;
        let m = frame.map.len();
        if m <= cfg.leaf_size || frame.depth >= cfg.max_depth {
            raw.push(RawNode { parent: frame.parent, side: frame.side, cut: frame.map });
            continue;
        }
        let (comp, k) = stl_graph::components::connected_components(&frame.graph);
        let (cut_local, side_a, side_b) = if k > 1 {
            split_components(&comp, k)
        } else {
            let sep = find_separator(&frame.graph, &cfg.partition);
            (sep.separator, sep.side_a, sep.side_b)
        };
        // Contract the cut into the remaining subgraph (CH-style fill-in):
        // this is where HC2L's shortcut densification happens.
        let augmented = contract_cut(&frame.graph, &cut_local);
        let cut_global: Vec<VertexId> = cut_local.iter().map(|&l| frame.map[l as usize]).collect();
        raw.push(RawNode { parent: frame.parent, side: frame.side, cut: cut_global });
        for (side_idx, side) in [(0u8, side_a), (1u8, side_b)].into_iter() {
            if side.is_empty() {
                continue;
            }
            let (sub, local_map) = induced_subgraph(&augmented, &side);
            let map: Vec<VertexId> = local_map.iter().map(|&l| frame.map[l as usize]).collect();
            queue.push_back(Frame {
                graph: sub,
                map,
                parent: id,
                side: side_idx,
                depth: frame.depth + 1,
            });
        }
    }
    Hierarchy::from_raw(n, raw)
}

/// Greedily balance whole components into two sides (cut stays empty).
fn split_components(comp: &[u32], k: usize) -> (Vec<VertexId>, Vec<VertexId>, Vec<VertexId>) {
    let mut sizes = vec![0usize; k];
    for &c in comp {
        sizes[c as usize] += 1;
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_unstable_by_key(|&c| std::cmp::Reverse(sizes[c]));
    let mut group = vec![0u8; k];
    let (mut ga, mut gb) = (0usize, 0usize);
    for &c in &order {
        if ga <= gb {
            group[c] = 0;
            ga += sizes[c];
        } else {
            group[c] = 1;
            gb += sizes[c];
        }
    }
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (v, &c) in comp.iter().enumerate() {
        if group[c as usize] == 0 {
            a.push(v as VertexId);
        } else {
            b.push(v as VertexId);
        }
    }
    (Vec::new(), a, b)
}

/// Eliminate `cut` vertices from `h` one by one, adding fill-in shortcuts
/// among their remaining neighbours; returns the graph on all of `h`'s
/// vertices with the new shortcut edges added (cut vertices keep their
/// original rows — they are dropped by the induced-subgraph step anyway).
fn contract_cut(h: &CsrGraph, cut: &[VertexId]) -> CsrGraph {
    let n = h.num_vertices();
    let mut in_cut = vec![false; n];
    for &c in cut {
        in_cut[c as usize] = true;
    }
    // Dynamic adjacency over surviving vertices.
    let mut adj: Vec<FxHashMap<VertexId, u32>> =
        (0..n as VertexId).map(|v| h.neighbors(v).collect::<FxHashMap<_, _>>()).collect();
    for &c in cut {
        let nbrs: Vec<(VertexId, u32)> = adj[c as usize]
            .iter()
            .filter(|&(&u, _)| !in_cut[u as usize] || u > c)
            .map(|(&u, &w)| (u, w))
            .collect();
        for i in 0..nbrs.len() {
            let (a, wa) = nbrs[i];
            for &(b, wb) in &nbrs[i + 1..] {
                let cand = dist_add(wa, wb);
                if cand == INF {
                    continue;
                }
                let cur = *adj[a as usize].get(&b).unwrap_or(&INF);
                if cand < cur {
                    adj[a as usize].insert(b, cand);
                    adj[b as usize].insert(a, cand);
                }
            }
        }
        // Remove c from remaining rows.
        let all: Vec<VertexId> = adj[c as usize].keys().copied().collect();
        for u in all {
            adj[u as usize].remove(&c);
        }
        adj[c as usize] = FxHashMap::default();
    }
    let mut b = GraphBuilder::new(n);
    for v in 0..n as VertexId {
        for (&u, &w) in &adj[v as usize] {
            if v < u {
                b.add_edge(v, u, w);
            }
        }
    }
    // Keep original rows for cut vertices so `induced_subgraph` of a side
    // sees its intra-side edges (cut rows themselves are never selected).
    for &c in cut {
        for (u, w) in h.neighbors(c) {
            b.add_edge(c, u, w);
        }
    }
    let mut out = b.build();
    if let Some(coords) = h.coords() {
        out.set_coords(coords.to_vec());
    }
    out
}

/// Global-distance labels via boundary-seeded restricted Dijkstras.
fn build_global_labels(g: &CsrGraph, hier: &Hierarchy) -> Labels {
    let n = g.num_vertices();
    let mut labels = Labels::new_inf(hier);
    let mut dist: TimestampedArray<Dist> = TimestampedArray::new(n, INF);
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    for node in 0..hier.num_nodes() as u32 {
        for &r in hier.cut(node) {
            let tr = hier.tau(r);
            dist.reset();
            heap.clear();
            dist.set(r as usize, 0);
            heap.push(Reverse((0, r)));
            // Boundary seeds: exits through strict ancestors w of r.
            hier.for_each_ancestor_inclusive(r, |w, tw| {
                if tw >= tr {
                    return;
                }
                let drw = labels.get(r, tw); // d_G(r, w), final by τ order
                if drw == INF {
                    return;
                }
                for (u, phi) in g.neighbors(w) {
                    if phi == INF || hier.tau(u) <= tr || !hier.precedes(r, u) {
                        continue;
                    }
                    let cand = dist_add(drw, phi);
                    if cand < dist.get(u as usize) {
                        dist.set(u as usize, cand);
                        heap.push(Reverse((cand, u)));
                    }
                }
            });
            while let Some(Reverse((d, v))) = heap.pop() {
                if d > dist.get(v as usize) {
                    continue;
                }
                labels.set(v, tr, d);
                let (ts, ws) = g.neighbor_slices(v);
                for (&nb, &w) in ts.iter().zip(ws) {
                    if w == INF || hier.tau(nb) <= tr {
                        continue;
                    }
                    let nd = dist_add(d, w);
                    if nd < dist.get(nb as usize) {
                        dist.set(nb as usize, nd);
                        heap.push(Reverse((nd, nb)));
                    }
                }
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use stl_graph::builder::from_edges;
    use stl_pathfinding::dijkstra;

    fn grid(side: u32) -> CsrGraph {
        let idx = |x: u32, y: u32| y * side + x;
        let mut edges = Vec::new();
        for y in 0..side {
            for x in 0..side {
                if x + 1 < side {
                    edges.push((idx(x, y), idx(x + 1, y), 1 + (x * 3 + y * 5) % 9));
                }
                if y + 1 < side {
                    edges.push((idx(x, y), idx(x, y + 1), 1 + (x * 7 + y * 2) % 9));
                }
            }
        }
        from_edges((side * side) as usize, edges)
    }

    #[test]
    fn all_pairs_exact_on_grid() {
        let g = grid(7);
        let hc2l = Hc2l::build(&g, &StlConfig::default());
        for s in 0..49u32 {
            let oracle = dijkstra::single_source(&g, s);
            for t in 0..49u32 {
                assert_eq!(hc2l.query(s, t), oracle[t as usize], "query({s},{t})");
            }
        }
    }

    #[test]
    fn labels_hold_global_distances() {
        let g = grid(5);
        let hc2l = Hc2l::build(&g, &StlConfig::default());
        let h = hc2l.hierarchy();
        for v in 0..25u32 {
            let oracle = dijkstra::single_source(&g, v);
            h.for_each_ancestor_inclusive(v, |r, i| {
                assert_eq!(
                    hc2l.index.labels().get(v, i),
                    oracle[r as usize],
                    "HC2L label must be the global distance d({v},{r})"
                );
            });
        }
    }

    #[test]
    fn exact_on_disconnected_graph() {
        let g = from_edges(6, vec![(0, 1, 2), (1, 2, 3), (3, 4, 1), (4, 5, 9)]);
        let hc2l = Hc2l::build(&g, &StlConfig { leaf_size: 2, ..Default::default() });
        assert_eq!(hc2l.query(0, 2), 5);
        assert_eq!(hc2l.query(0, 5), INF);
        assert_eq!(hc2l.query(3, 5), 10);
    }

    #[test]
    fn exact_under_various_leaf_sizes() {
        let g = grid(5);
        for leaf in [1usize, 3, 9, 30] {
            let hc2l = Hc2l::build(&g, &StlConfig { leaf_size: leaf, ..Default::default() });
            let oracle = dijkstra::single_source(&g, 7);
            for t in 0..25u32 {
                assert_eq!(hc2l.query(7, t), oracle[t as usize], "leaf={leaf} t={t}");
            }
        }
    }

    #[test]
    fn densified_cuts_no_smaller_than_stl() {
        // The structural claim behind Table 4: contraction shortcuts densify
        // lower levels, so HC2L's total label count should not undercut
        // STL's on the same graph/config (allowing small-noise slack).
        let g = grid(12);
        let cfg = StlConfig::default();
        let stl = stl_core::Stl::build(&g, &cfg);
        let hc2l = Hc2l::build(&g, &cfg);
        let stl_entries = stl.labels().num_entries() as f64;
        let hc2l_entries = hc2l.label_entries() as f64;
        assert!(
            hc2l_entries >= stl_entries * 0.9,
            "hc2l {hc2l_entries} unexpectedly far below stl {stl_entries}"
        );
    }

    #[test]
    fn contract_cut_preserves_side_distances() {
        // Removing a separator after contraction must preserve distances
        // between same-side vertices.
        let g = grid(5);
        let sep = find_separator(&g, &stl_partition::PartitionConfig::default());
        let aug = contract_cut(&g, &sep.separator);
        let (sub, map) = induced_subgraph(&aug, &sep.side_a);
        for i in 0..sub.num_vertices() as VertexId {
            let oracle = dijkstra::single_source(&g, map[i as usize]);
            let local = dijkstra::single_source(&sub, i);
            for j in 0..sub.num_vertices() as VertexId {
                // Paths may still legitimately leave side A through the
                // *other* side in pathological cases; contraction only
                // covers paths through the cut, so allow ≥ (upper bound)
                // but require equality when the true path stays in A ∪ C.
                assert!(
                    local[j as usize] >= oracle[map[j as usize] as usize],
                    "contracted distance below true distance"
                );
            }
        }
    }
}
