//! DCH-style dynamic maintenance of CH-W shortcut weights.
//!
//! Changed weights propagate strictly upward in elimination rank: a shortcut
//! `(u,v)` is influenced only by its base edge and by supports `x` with
//! `rank(x) < min(rank(u), rank(v))`. Processing pending pairs in ascending
//! rank of their lower endpoint therefore finalises each pair in one visit.
//!
//! Both directions return the list of shortcut changes
//! `(low_endpoint, high_endpoint, old μ, new μ)` — the seed set for the
//! label-maintenance phase of IncH2H / DTDHL.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use stl_graph::hash::FxHashSet;
use stl_graph::{dist_add, VertexId, Weight};

use crate::chw::ChwIndex;

/// A shortcut weight change: `(lower endpoint, higher endpoint, old, new)`.
pub type MuChange = (VertexId, VertexId, Weight, Weight);

/// Apply a base edge-weight **decrease** to `(a, b)`; returns all shortcut
/// changes in upward rank order.
pub fn decrease(chw: &mut ChwIndex, a: VertexId, b: VertexId, w_new: Weight) -> Vec<MuChange> {
    let old_base = chw.set_base_weight(a, b, w_new);
    debug_assert!(w_new <= old_base, "decrease got an increase");
    let mut changes: Vec<MuChange> = Vec::new();
    let mut pending: BinaryHeap<Reverse<(u32, VertexId, VertexId)>> = BinaryHeap::new();
    let mut queued: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    let (lo, hi) = orient(chw, a, b);
    let cur = chw.mu(lo, hi).expect("original edge must be chordal");
    if w_new < cur {
        chw.set_mu(lo, hi, w_new);
        changes.push((lo, hi, cur, w_new));
        push_dependents(chw, lo, hi, &mut pending, &mut queued);
    }
    // Relax upward: when (u,v) pops, all pairs below it are final.
    while let Some(Reverse((_, u, v))) = pending.pop() {
        let old = chw.mu(u, v).expect("queued pair must exist");
        let new = recompute_min(chw, u, v);
        if new < old {
            chw.set_mu(u, v, new);
            changes.push((u, v, old, new));
            push_dependents(chw, u, v, &mut pending, &mut queued);
        }
    }
    changes
}

/// Apply a base edge-weight **increase** to `(a, b)`; returns all shortcut
/// changes in upward rank order.
pub fn increase(chw: &mut ChwIndex, a: VertexId, b: VertexId, w_new: Weight) -> Vec<MuChange> {
    let old_base = chw.set_base_weight(a, b, w_new);
    debug_assert!(w_new >= old_base, "increase got a decrease");
    let mut changes: Vec<MuChange> = Vec::new();
    let mut pending: BinaryHeap<Reverse<(u32, VertexId, VertexId)>> = BinaryHeap::new();
    let mut queued: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    let (lo, hi) = orient(chw, a, b);
    queued.insert((lo, hi));
    pending.push(Reverse((chw.rank[lo as usize], lo, hi)));
    while let Some(Reverse((_, u, v))) = pending.pop() {
        let old = chw.mu(u, v).expect("queued pair must exist");
        let new = recompute_min(chw, u, v);
        if new != old {
            chw.set_mu(u, v, new);
            changes.push((u, v, old, new));
            push_dependents(chw, u, v, &mut pending, &mut queued);
        }
    }
    changes
}

/// `min(base(u,v), min_x μ(x,u)+μ(x,v))` without writing.
fn recompute_min(chw: &ChwIndex, u: VertexId, v: VertexId) -> Weight {
    let mut best = chw.base_weight(u, v);
    for &x in chw.down(u) {
        let (ts, ws) = chw.up(x);
        if let (Ok(i), Ok(j)) = (ts.binary_search(&u), ts.binary_search(&v)) {
            best = best.min(dist_add(ws[i], ws[j]));
        }
    }
    best
}

/// Queue every shortcut that `(u,v)` supports: pairs `(v, w)` (canonical)
/// for the other up-neighbours `w` of the lower endpoint `u`.
fn push_dependents(
    chw: &ChwIndex,
    u: VertexId,
    v: VertexId,
    pending: &mut BinaryHeap<Reverse<(u32, VertexId, VertexId)>>,
    queued: &mut FxHashSet<(VertexId, VertexId)>,
) {
    let (ts, _) = chw.up(u);
    for &w in ts {
        if w == v {
            continue;
        }
        let (lo, hi) = orient(chw, v, w);
        if queued.insert((lo, hi)) {
            pending.push(Reverse((chw.rank[lo as usize], lo, hi)));
        }
    }
}

#[inline]
fn orient(chw: &ChwIndex, a: VertexId, b: VertexId) -> (VertexId, VertexId) {
    if chw.rank[a as usize] < chw.rank[b as usize] {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stl_graph::builder::from_edges;
    use stl_graph::CsrGraph;

    fn grid(side: u32) -> CsrGraph {
        let idx = |x: u32, y: u32| y * side + x;
        let mut edges = Vec::new();
        for y in 0..side {
            for x in 0..side {
                if x + 1 < side {
                    edges.push((idx(x, y), idx(x + 1, y), 2 + (x + 2 * y) % 9));
                }
                if y + 1 < side {
                    edges.push((idx(x, y), idx(x, y + 1), 2 + (3 * x + y) % 9));
                }
            }
        }
        from_edges((side * side) as usize, edges)
    }

    /// Rebuilding from scratch must give the same μ values as maintenance.
    fn assert_matches_rebuild(g: &CsrGraph, chw: &ChwIndex) {
        let fresh = ChwIndex::build(g);
        for v in 0..g.num_vertices() as VertexId {
            // The elimination order is weight-independent (min-degree), so
            // the chordal structure matches and weights must agree.
            let (ts, ws) = chw.up(v);
            let (fts, fws) = fresh.up(v);
            assert_eq!(ts, fts, "chordal structure drifted at {v}");
            assert_eq!(ws, fws, "μ values drifted at {v}");
        }
    }

    #[test]
    fn decrease_matches_rebuild() {
        let mut g = grid(5);
        let mut chw = ChwIndex::build(&g);
        let (a, b, w) = g.edges().nth(12).unwrap();
        g.set_weight(a, b, (w / 2).max(1)).unwrap();
        let changes = decrease(&mut chw, a, b, (w / 2).max(1));
        assert!(!changes.is_empty());
        assert_matches_rebuild(&g, &chw);
    }

    #[test]
    fn increase_matches_rebuild() {
        let mut g = grid(5);
        let mut chw = ChwIndex::build(&g);
        let (a, b, w) = g.edges().nth(7).unwrap();
        g.set_weight(a, b, w * 3).unwrap();
        let changes = increase(&mut chw, a, b, w * 3);
        assert!(!changes.is_empty());
        assert_matches_rebuild(&g, &chw);
    }

    #[test]
    fn redundant_increase_changes_nothing_downstream() {
        // Increasing an edge that was never the minimizer of any shortcut
        // beyond itself must produce at most the base pair change.
        let mut g = grid(4);
        let mut chw = ChwIndex::build(&g);
        let (a, b, w) = g.edges().next().unwrap();
        // Huge parallel path cost: make sure this edge IS its own μ first.
        let before = chw.mu(a, b).unwrap();
        if before == w {
            g.set_weight(a, b, w + 1).unwrap();
            increase(&mut chw, a, b, w + 1);
            assert_matches_rebuild(&g, &chw);
        }
    }

    #[test]
    fn update_roundtrip_restores_mu() {
        let mut g = grid(5);
        let mut chw = ChwIndex::build(&g);
        let reference = chw.clone();
        let (a, b, w) = g.edges().nth(20).unwrap();
        g.set_weight(a, b, w * 5).unwrap();
        increase(&mut chw, a, b, w * 5);
        g.set_weight(a, b, w).unwrap();
        decrease(&mut chw, a, b, w);
        for v in 0..25u32 {
            assert_eq!(chw.up(v).1, reference.up(v).1, "μ not restored at {v}");
        }
    }

    #[test]
    fn randomized_update_stream_matches_rebuild() {
        let mut g = grid(5);
        let mut chw = ChwIndex::build(&g);
        let edges: Vec<_> = g.edges().collect();
        let mut state = 77u64;
        let mut next = |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..40 {
            let (a, b, _) = edges[next(edges.len() as u64) as usize];
            let cur = g.weight(a, b).unwrap();
            let t = (next(30) + 1) as u32;
            if t < cur {
                g.set_weight(a, b, t).unwrap();
                decrease(&mut chw, a, b, t);
            } else if t > cur {
                g.set_weight(a, b, t).unwrap();
                increase(&mut chw, a, b, t);
            }
        }
        assert_matches_rebuild(&g, &chw);
    }
}
