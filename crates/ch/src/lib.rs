//! Contraction substrate for the H2H baseline family (§3.1).
//!
//! * [`chw`] — CH-W contraction: eliminate vertices in minimum-degree order,
//!   inserting **all** shortcuts among higher-ranked neighbours (no witness
//!   search). The result is a chordal super-graph whose bags
//!   `X(v) = {v} ∪ N_up(v)` form a tree decomposition.
//! * [`dch`] — DCH-style dynamic maintenance of the shortcut weights under
//!   edge-weight decreases and increases (the phase-1 machinery of IncH2H
//!   and DTDHL).
//!
//! The shortcut weight invariant maintained throughout:
//! `μ(u,v) = min( φ(u,v), min_x ( μ(x,u) + μ(x,v) ) )` over supports `x`
//! eliminated before both endpoints — i.e. `μ(u,v)` is the shortest-path
//! distance between `u` and `v` using only intermediate vertices eliminated
//! before `u`.

pub mod chw;
pub mod dch;
pub mod hierarchy;

pub use chw::ChwIndex;
pub use hierarchy::ContractionHierarchy;
