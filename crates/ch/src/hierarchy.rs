//! Classical Contraction Hierarchies (CH) with witness search.
//!
//! The search-based baseline from the paper's introduction (Geisberger et
//! al.): vertices are contracted in importance order and a shortcut `(u,w)`
//! is added only when no *witness path* of equal-or-smaller weight avoids
//! the contracted vertex — keeping the shortcut set minimal, unlike CH-W
//! ([`crate::chw`]) which fills in everything. Queries run a bidirectional
//! Dijkstra over **upward** arcs only.
//!
//! STL's §2 position is that maintaining minimal shortcuts dynamically is
//! "highly inefficient because recontraction has to ensure the minimality
//! of shortcuts" — this implementation exists as the static query baseline
//! and as the reference point for that discussion.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use stl_graph::hash::FxHashMap;
use stl_graph::{dist_add, CsrGraph, Dist, VertexId, Weight, INF};
use stl_pathfinding::TimestampedArray;

/// A built contraction hierarchy.
#[derive(Debug, Clone)]
pub struct ContractionHierarchy {
    /// Contraction rank (low = contracted early = less important).
    pub rank: Vec<u32>,
    /// Upward adjacency: per vertex, arcs to higher-ranked neighbours
    /// (original edges and shortcuts), sorted by target.
    up_targets: Vec<Vec<VertexId>>,
    up_weights: Vec<Vec<Weight>>,
    shortcuts: usize,
}

/// Witness-search budget: settled-node cap per local search. Small caps
/// trade a few redundant shortcuts for much faster preprocessing (standard
/// practice).
const WITNESS_SETTLE_CAP: usize = 60;

impl ContractionHierarchy {
    /// Contract `g` with a lazy edge-difference priority and witness search.
    pub fn build(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut adj: Vec<FxHashMap<VertexId, Weight>> =
            (0..n as VertexId).map(|v| g.neighbors(v).collect()).collect();
        let mut rank = vec![0u32; n];
        let mut contracted = vec![false; n];
        let mut up: Vec<Vec<(VertexId, Weight)>> = vec![Vec::new(); n];
        let mut shortcuts = 0usize;
        // Priority = edge difference (shortcuts added − edges removed) +
        // contracted-neighbour count; recomputed lazily.
        let mut heap: BinaryHeap<Reverse<(i64, VertexId)>> = BinaryHeap::new();
        let mut deleted_nbrs = vec![0i64; n];
        let mut wit = WitnessSearch::new(n);
        for v in 0..n as VertexId {
            let p = Self::priority(&adj, &mut wit, v, 0);
            heap.push(Reverse((p, v)));
        }
        let mut next_rank = 0u32;
        while let Some(Reverse((p, v))) = heap.pop() {
            if contracted[v as usize] {
                continue;
            }
            // Lazy re-evaluation: if priority got stale, requeue.
            let fresh = Self::priority(&adj, &mut wit, v, deleted_nbrs[v as usize]);
            if fresh > p {
                heap.push(Reverse((fresh, v)));
                continue;
            }
            // Contract v.
            contracted[v as usize] = true;
            rank[v as usize] = next_rank;
            next_rank += 1;
            let nbrs: Vec<(VertexId, Weight)> =
                adj[v as usize].iter().map(|(&u, &w)| (u, w)).collect();
            for &(u, w) in &nbrs {
                up[v as usize].push((u, w));
                adj[u as usize].remove(&v);
                deleted_nbrs[u as usize] += 1;
            }
            for i in 0..nbrs.len() {
                let (u, wu) = nbrs[i];
                for &(t, wt) in &nbrs[i + 1..] {
                    let cand = dist_add(wu, wt);
                    if cand == INF {
                        continue;
                    }
                    let cur = *adj[u as usize].get(&t).unwrap_or(&INF);
                    if cand >= cur {
                        continue; // existing edge is the witness
                    }
                    if wit.has_witness(&adj, u, t, v, cand) {
                        continue;
                    }
                    adj[u as usize].insert(t, cand);
                    adj[t as usize].insert(u, cand);
                    shortcuts += 1;
                }
            }
            adj[v as usize] = FxHashMap::default();
        }
        // Sort upward lists for deterministic iteration.
        let mut up_targets = Vec::with_capacity(n);
        let mut up_weights = Vec::with_capacity(n);
        for list in &mut up {
            list.sort_unstable_by_key(|&(t, _)| t);
            up_targets.push(list.iter().map(|&(t, _)| t).collect::<Vec<_>>());
            up_weights.push(list.iter().map(|&(_, w)| w).collect::<Vec<_>>());
        }
        ContractionHierarchy { rank, up_targets, up_weights, shortcuts }
    }

    fn priority(
        adj: &[FxHashMap<VertexId, Weight>],
        wit: &mut WitnessSearch,
        v: VertexId,
        deleted: i64,
    ) -> i64 {
        // Cheap estimate: assume every non-witnessed pair needs a shortcut.
        let nbrs: Vec<(VertexId, Weight)> = adj[v as usize].iter().map(|(&u, &w)| (u, w)).collect();
        let deg = nbrs.len() as i64;
        let mut added = 0i64;
        for i in 0..nbrs.len() {
            let (u, wu) = nbrs[i];
            for &(t, wt) in &nbrs[i + 1..] {
                let cand = dist_add(wu, wt);
                let cur = *adj[u as usize].get(&t).unwrap_or(&INF);
                if cand < cur && !wit.has_witness(adj, u, t, v, cand) {
                    added += 1;
                }
            }
        }
        added - deg + 2 * deleted
    }

    /// Number of shortcut edges added (must undercut CH-W's fill-in).
    pub fn num_shortcuts(&self) -> usize {
        self.shortcuts
    }

    /// Bidirectional upward query: exact `d(s, t)`.
    pub fn query(&self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return 0;
        }
        let n = self.rank.len();
        let mut fwd: FxHashMap<VertexId, Dist> = FxHashMap::default();
        let mut bwd: FxHashMap<VertexId, Dist> = FxHashMap::default();
        let mut best = INF;
        let mut heap_f: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
        let mut heap_b: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
        fwd.insert(s, 0);
        bwd.insert(t, 0);
        heap_f.push(Reverse((0, s)));
        heap_b.push(Reverse((0, t)));
        let _ = n;
        loop {
            let tf = heap_f.peek().map(|Reverse((d, _))| *d).unwrap_or(INF);
            let tb = heap_b.peek().map(|Reverse((d, _))| *d).unwrap_or(INF);
            if tf.min(tb) >= best {
                break;
            }
            let (heap, dist, other) = if tf <= tb {
                (&mut heap_f, &mut fwd, &bwd)
            } else {
                (&mut heap_b, &mut bwd, &fwd)
            };
            if let Some(Reverse((d, v))) = heap.pop() {
                if d > *dist.get(&v).unwrap_or(&INF) {
                    continue;
                }
                if let Some(&o) = other.get(&v) {
                    best = best.min(dist_add(d, o));
                }
                let (ts, ws) = (&self.up_targets[v as usize], &self.up_weights[v as usize]);
                for (&u, &w) in ts.iter().zip(ws) {
                    if w == INF {
                        continue;
                    }
                    let nd = dist_add(d, w);
                    if nd < *dist.get(&u).unwrap_or(&INF) {
                        dist.insert(u, nd);
                        heap.push(Reverse((nd, u)));
                    }
                }
            }
        }
        best
    }
}

/// Bounded local Dijkstra used to find witness paths around a vertex.
struct WitnessSearch {
    dist: TimestampedArray<Dist>,
    heap: BinaryHeap<Reverse<(Dist, VertexId)>>,
}

impl WitnessSearch {
    fn new(n: usize) -> Self {
        Self { dist: TimestampedArray::new(n, INF), heap: BinaryHeap::new() }
    }

    /// Is there a path `u → … → t` avoiding `avoid` with weight ≤ `limit`?
    fn has_witness(
        &mut self,
        adj: &[FxHashMap<VertexId, Weight>],
        u: VertexId,
        t: VertexId,
        avoid: VertexId,
        limit: Dist,
    ) -> bool {
        self.dist.reset();
        self.heap.clear();
        self.dist.set(u as usize, 0);
        self.heap.push(Reverse((0, u)));
        let mut settled = 0usize;
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if d > self.dist.get(v as usize) {
                continue;
            }
            if v == t {
                return d <= limit;
            }
            if d > limit {
                return false; // everything further is heavier
            }
            settled += 1;
            if settled > WITNESS_SETTLE_CAP {
                return false; // give up: add the (possibly redundant) shortcut
            }
            for (&nb, &w) in &adj[v as usize] {
                if nb == avoid || w == INF {
                    continue;
                }
                let nd = dist_add(d, w);
                if nd <= limit && nd < self.dist.get(nb as usize) {
                    self.dist.set(nb as usize, nd);
                    self.heap.push(Reverse((nd, nb)));
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stl_graph::builder::from_edges;
    use stl_pathfinding::dijkstra;

    fn grid(side: u32) -> CsrGraph {
        let idx = |x: u32, y: u32| y * side + x;
        let mut edges = Vec::new();
        for y in 0..side {
            for x in 0..side {
                if x + 1 < side {
                    edges.push((idx(x, y), idx(x + 1, y), 1 + (x * 7 + y * 3) % 11));
                }
                if y + 1 < side {
                    edges.push((idx(x, y), idx(x, y + 1), 1 + (x * 2 + y * 5) % 11));
                }
            }
        }
        from_edges((side * side) as usize, edges)
    }

    #[test]
    fn all_pairs_queries_exact() {
        let g = grid(6);
        let ch = ContractionHierarchy::build(&g);
        for s in 0..36u32 {
            let oracle = dijkstra::single_source(&g, s);
            for t in 0..36u32 {
                assert_eq!(ch.query(s, t), oracle[t as usize], "query({s},{t})");
            }
        }
    }

    #[test]
    fn witness_search_prunes_shortcuts_vs_chw() {
        let g = grid(8);
        let ch = ContractionHierarchy::build(&g);
        let chw = crate::chw::ChwIndex::build(&g);
        let chw_shortcuts = chw.num_chordal_edges() - g.num_edges();
        assert!(
            ch.num_shortcuts() < chw_shortcuts,
            "CH {} shortcuts should undercut CH-W {}",
            ch.num_shortcuts(),
            chw_shortcuts
        );
    }

    #[test]
    fn disconnected_pairs_inf() {
        let g = from_edges(4, vec![(0, 1, 1), (2, 3, 1)]);
        let ch = ContractionHierarchy::build(&g);
        assert_eq!(ch.query(0, 2), INF);
        assert_eq!(ch.query(0, 1), 1);
    }

    #[test]
    fn line_graph_stays_sparse() {
        // Contracting a path interior vertex bridges its two neighbours, so
        // some shortcuts appear, but never more than one per contraction.
        let g = from_edges(10, (0..9).map(|i| (i, i + 1, 2)).collect::<Vec<_>>());
        let ch = ContractionHierarchy::build(&g);
        assert!(ch.num_shortcuts() < g.num_vertices(), "got {}", ch.num_shortcuts());
        assert_eq!(ch.query(0, 9), 18);
    }

    #[test]
    fn ring_with_chord_exact() {
        let mut edges: Vec<(u32, u32, u32)> = (0..12u32).map(|i| (i, (i + 1) % 12, 3)).collect();
        edges.push((0, 6, 5));
        let g = from_edges(12, edges);
        let ch = ContractionHierarchy::build(&g);
        for s in 0..12u32 {
            let oracle = dijkstra::single_source(&g, s);
            for t in 0..12u32 {
                assert_eq!(ch.query(s, t), oracle[t as usize]);
            }
        }
    }

    #[test]
    fn random_graph_exact() {
        let mut edges = Vec::new();
        let mut state = 2024u64;
        let mut next = |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let n = 80u64;
        for i in 1..n {
            edges.push((i as u32, next(i) as u32, (next(50) + 1) as u32));
        }
        for _ in 0..120 {
            edges.push((next(n) as u32, next(n) as u32, (next(50) + 1) as u32));
        }
        let g = from_edges(n as usize, edges);
        let ch = ContractionHierarchy::build(&g);
        for s in (0..n as u32).step_by(9) {
            let oracle = dijkstra::single_source(&g, s);
            for t in 0..n as u32 {
                assert_eq!(ch.query(s, t), oracle[t as usize], "({s},{t})");
            }
        }
    }
}
