//! CH-W construction: minimum-degree elimination with full shortcut fill-in.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use stl_graph::hash::FxHashMap;
use stl_graph::{dist_add, CsrGraph, VertexId, Weight, INF};

/// The CH-W shortcut structure (a weighted chordal super-graph of `G`).
#[derive(Debug, Clone)]
pub struct ChwIndex {
    /// Elimination order: `order[i]` is the `i`-th eliminated vertex.
    pub order: Vec<VertexId>,
    /// `rank[v]` = elimination position of `v` (low = eliminated early).
    pub rank: Vec<u32>,
    /// Per vertex: higher-ranked neighbours at elimination time with their
    /// current shortcut weights μ, sorted by neighbour id.
    up_targets: Vec<Vec<VertexId>>,
    up_weights: Vec<Vec<Weight>>,
    /// Per vertex `v`: all `x` with `v ∈ up(x)` (the supports containing v).
    down: Vec<Vec<VertexId>>,
    /// Original graph edge weights keyed by `(min_id, max_id)`.
    base: FxHashMap<(VertexId, VertexId), Weight>,
}

impl ChwIndex {
    /// Contract `g` in minimum-degree order.
    pub fn build(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        // Dynamic adjacency with weights.
        let mut adj: Vec<FxHashMap<VertexId, Weight>> =
            (0..n as VertexId).map(|v| g.neighbors(v).collect::<FxHashMap<_, _>>()).collect();
        let mut base = FxHashMap::default();
        for (u, v, w) in g.edges() {
            base.insert(key(u, v), w);
        }
        let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> =
            (0..n as VertexId).map(|v| Reverse((adj[v as usize].len() as u32, v))).collect();
        let mut eliminated = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut rank = vec![0u32; n];
        let mut up_targets: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut up_weights: Vec<Vec<Weight>> = vec![Vec::new(); n];
        while let Some(Reverse((deg, v))) = heap.pop() {
            if eliminated[v as usize] || deg as usize != adj[v as usize].len() {
                continue; // stale degree entry
            }
            rank[v as usize] = order.len() as u32;
            order.push(v);
            eliminated[v as usize] = true;
            // Current neighbours are exactly the higher-ranked ones.
            let mut nbrs: Vec<(VertexId, Weight)> =
                adj[v as usize].iter().map(|(&u, &w)| (u, w)).collect();
            nbrs.sort_unstable_by_key(|&(u, _)| u);
            // Fill-in: clique among the remaining neighbours.
            for i in 0..nbrs.len() {
                let (a, wa) = nbrs[i];
                for &(b, wb) in &nbrs[i + 1..] {
                    let cand = dist_add(wa, wb);
                    let cur = *adj[a as usize].get(&b).unwrap_or(&INF);
                    if cand < cur {
                        adj[a as usize].insert(b, cand);
                        adj[b as usize].insert(a, cand);
                    } else if cur != INF && !adj[b as usize].contains_key(&a) {
                        adj[b as usize].insert(a, cur);
                    }
                }
            }
            for &(u, _) in &nbrs {
                adj[u as usize].remove(&v);
                heap.push(Reverse((adj[u as usize].len() as u32, u)));
            }
            up_targets[v as usize] = nbrs.iter().map(|&(u, _)| u).collect();
            up_weights[v as usize] = nbrs.iter().map(|&(_, w)| w).collect();
            adj[v as usize] = FxHashMap::default(); // free memory early
        }
        let mut down: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for v in 0..n as VertexId {
            for &u in &up_targets[v as usize] {
                down[u as usize].push(v);
            }
        }
        ChwIndex { order, rank, up_targets, up_weights, down, base }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// Higher-ranked neighbours of `v` (its bag minus `v`), sorted by id.
    #[inline]
    pub fn up(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        (&self.up_targets[v as usize], &self.up_weights[v as usize])
    }

    /// Vertices whose bag contains `v`.
    #[inline]
    pub fn down(&self, v: VertexId) -> &[VertexId] {
        &self.down[v as usize]
    }

    /// Current shortcut weight `μ(u,v)`; `None` if `(u,v)` is not a chordal
    /// edge. Endpoint order is irrelevant.
    pub fn mu(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let (lo, hi) = if self.rank[u as usize] < self.rank[v as usize] { (u, v) } else { (v, u) };
        self.up_targets[lo as usize]
            .binary_search(&hi)
            .ok()
            .map(|i| self.up_weights[lo as usize][i])
    }

    /// Overwrite `μ(u,v)`; panics if the chordal edge does not exist.
    pub fn set_mu(&mut self, u: VertexId, v: VertexId, w: Weight) {
        let (lo, hi) = if self.rank[u as usize] < self.rank[v as usize] { (u, v) } else { (v, u) };
        let i = self.up_targets[lo as usize]
            .binary_search(&hi)
            .unwrap_or_else(|_| panic!("no chordal edge ({lo},{hi})"));
        self.up_weights[lo as usize][i] = w;
    }

    /// Original edge weight of `{u,v}`, `INF` if not an original edge.
    #[inline]
    pub fn base_weight(&self, u: VertexId, v: VertexId) -> Weight {
        self.base.get(&key(u, v)).copied().unwrap_or(INF)
    }

    /// Update the stored original edge weight; returns the old one.
    pub fn set_base_weight(&mut self, u: VertexId, v: VertexId, w: Weight) -> Weight {
        let slot = self.base.get_mut(&key(u, v)).expect("not an original edge");
        std::mem::replace(slot, w)
    }

    /// Recompute `μ(u,v)` from scratch: base weight and all supports.
    pub fn recompute_mu(&mut self, u: VertexId, v: VertexId) -> Weight {
        let (lo, hi) = if self.rank[u as usize] < self.rank[v as usize] { (u, v) } else { (v, u) };
        let mut best = self.base_weight(lo, hi);
        // Supports: x with lo,hi ∈ up(x) — scan down(lo), check up(x) ∋ hi.
        for i in 0..self.down[lo as usize].len() {
            let x = self.down[lo as usize][i];
            let (ts, ws) = self.up(x);
            if let (Ok(a), Ok(b)) = (ts.binary_search(&lo), ts.binary_search(&hi)) {
                best = best.min(dist_add(ws[a], ws[b]));
            }
        }
        self.set_mu(lo, hi, best);
        best
    }

    /// Total chordal (shortcut + original) edges.
    pub fn num_chordal_edges(&self) -> usize {
        self.up_targets.iter().map(|t| t.len()).sum()
    }

    /// Approximate resident bytes (shortcuts, reverse adjacency, base map) —
    /// the auxiliary data that inflates the H2H-family footprint (Table 4).
    pub fn memory_bytes(&self) -> usize {
        let up: usize = self.up_targets.iter().map(|t| t.len() * 8).sum();
        let down: usize = self.down.iter().map(|d| d.len() * 4).sum();
        up + down + self.base.len() * 12 + self.rank.len() * 8
    }
}

#[inline]
fn key(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stl_graph::builder::from_edges;
    use stl_pathfinding::dijkstra;

    fn grid(side: u32) -> CsrGraph {
        let idx = |x: u32, y: u32| y * side + x;
        let mut edges = Vec::new();
        for y in 0..side {
            for x in 0..side {
                if x + 1 < side {
                    edges.push((idx(x, y), idx(x + 1, y), 1 + (x + 2 * y) % 7));
                }
                if y + 1 < side {
                    edges.push((idx(x, y), idx(x, y + 1), 1 + (3 * x + y) % 7));
                }
            }
        }
        from_edges((side * side) as usize, edges)
    }

    /// μ(u,v) must equal the shortest u–v distance restricted to paths whose
    /// intermediates are eliminated before min-rank(u,v).
    fn check_mu_invariant(g: &CsrGraph, chw: &ChwIndex) {
        let n = g.num_vertices();
        for v in 0..n as VertexId {
            let (ts, ws) = chw.up(v);
            for (&u, &w) in ts.iter().zip(ws) {
                // Reference: Dijkstra on the subgraph {x : rank(x) < rank(v)} ∪ {u, v}.
                let rv = chw.rank[v as usize];
                let mut eng = stl_pathfinding::DijkstraEngine::new(n);
                eng.run_filtered(g, v, |x| x == u || x == v || chw.rank[x as usize] < rv);
                assert_eq!(w, eng.dist(u), "μ({v},{u}) wrong");
            }
        }
    }

    #[test]
    fn elimination_covers_all_vertices() {
        let g = grid(5);
        let chw = ChwIndex::build(&g);
        assert_eq!(chw.order.len(), 25);
        let mut seen = [false; 25];
        for &v in &chw.order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        for (i, &v) in chw.order.iter().enumerate() {
            assert_eq!(chw.rank[v as usize] as usize, i);
        }
    }

    #[test]
    fn up_neighbours_are_higher_ranked() {
        let g = grid(6);
        let chw = ChwIndex::build(&g);
        for v in 0..36u32 {
            let (ts, _) = chw.up(v);
            for &u in ts {
                assert!(chw.rank[u as usize] > chw.rank[v as usize]);
            }
        }
    }

    #[test]
    fn mu_is_restricted_shortest_path() {
        let g = grid(5);
        let chw = ChwIndex::build(&g);
        check_mu_invariant(&g, &chw);
    }

    #[test]
    fn top_level_mu_is_global_distance() {
        // The last two eliminated vertices see every other vertex as a
        // potential intermediate, so their μ equals d_G.
        let g = grid(6);
        let chw = ChwIndex::build(&g);
        let last = *chw.order.last().unwrap();
        let (ts, ws) = chw.up(chw.order[chw.order.len() - 2]);
        if let Ok(i) = ts.binary_search(&last) {
            let d = dijkstra::distance(&g, chw.order[chw.order.len() - 2], last);
            assert_eq!(ws[i], d);
        }
    }

    #[test]
    fn recompute_matches_current_values() {
        let mut chw = ChwIndex::build(&grid(5));
        // Recomputing any chordal edge without weight changes is a no-op.
        for v in 0..25u32 {
            let (ts, ws) = chw.up(v);
            let pairs: Vec<_> = ts.iter().copied().zip(ws.iter().copied()).collect();
            for (u, w) in pairs {
                assert_eq!(chw.recompute_mu(v, u), w, "recompute μ({v},{u}) drifted");
            }
        }
    }

    #[test]
    fn mu_lookup_both_orders() {
        let chw = ChwIndex::build(&grid(4));
        for v in 0..16u32 {
            let (ts, ws) = chw.up(v);
            for (&u, &w) in ts.iter().zip(ws) {
                assert_eq!(chw.mu(v, u), Some(w));
                assert_eq!(chw.mu(u, v), Some(w));
            }
        }
        assert_eq!(chw.mu(0, 0), None);
    }

    #[test]
    fn base_weights_recorded() {
        let g = grid(4);
        let chw = ChwIndex::build(&g);
        for (u, v, w) in g.edges() {
            assert_eq!(chw.base_weight(u, v), w);
        }
        assert_eq!(chw.base_weight(0, 15), INF);
    }

    #[test]
    fn bag_sizes_reasonable_on_grid() {
        let g = grid(8);
        let chw = ChwIndex::build(&g);
        let max_bag = (0..64u32).map(|v| chw.up(v).0.len()).max().unwrap();
        // Treewidth of an 8x8 grid is 8; min-degree should stay in range.
        assert!(max_bag <= 24, "bag size {max_bag} too large");
    }
}
