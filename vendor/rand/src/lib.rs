//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no registry access, so the
//! workspace resolves `rand` to this shim. It implements exactly the API
//! subset the workspace uses — `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] and [`Rng::random_bool`] — with the method names of
//! rand 0.9, so swapping back to the real crate is a one-line manifest change.
//!
//! The generator is xoshiro256++ seeded via splitmix64: high-quality enough
//! for workload generation and fully deterministic across platforms, which is
//! what the test-suite relies on. It makes no statistical-uniformity promises
//! beyond that (range sampling uses rejection-free multiply-shift, which
//! carries at most one part in 2^64 of bias).

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG abstraction: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open or inclusive integer range.
    ///
    /// Panics if the range is empty, matching the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 high bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled from — mirrors `rand::distr::uniform`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Map a uniform `u64` onto `[0, span)` by 128-bit multiply-shift.
#[inline]
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + bounded(rng, span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $u).wrapping_sub(lo as $u) as u64 + 1;
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    ///
    /// Unlike the real `StdRng` this makes a cross-version stream-stability
    /// promise: the workspace's golden tests depend on `seed_from_u64`
    /// producing identical streams forever.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u32> = (0..64).map(|_| a.random_range(0u32..1000)).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.random_range(0u32..1000)).collect();
        let zs: Vec<u32> = (0..64).map(|_| c.random_range(0u32..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let z: i64 = rng.random_range(-8i64..=8);
            assert!((-8..=8).contains(&z));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
