//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so the workspace resolves
//! `criterion` to this shim. Bench sources compile unchanged against the
//! subset they use (`Criterion::benchmark_group`, `bench_function`,
//! `BenchmarkId`, `Bencher::iter`, `sample_size`, the `criterion_group!` /
//! `criterion_main!` macros). Instead of criterion's statistical analysis it
//! runs a warm-up pass followed by timed samples and reports min / mean /
//! median per benchmark — enough for A/B comparisons until the real crate can
//! be restored with a one-line manifest change.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Machine-readable run summaries for CI perf-trajectory tracking.
///
/// When the `BENCH_SUMMARY_PATH` environment variable is set, the harness
/// writes a single JSON object to that path when the binary finishes:
///
/// ```json
/// {"<bench>": {"median_ns": {"<label>": 123.4, ...}, "counters": {...}}}
/// ```
///
/// `<bench>` is `BENCH_SUMMARY_NAME` when set, else the executable's stem
/// with cargo's `-<hash>` suffix stripped. Medians come from the normal
/// sample loop; in `--test` mode (where bodies normally run once, untimed)
/// the harness takes three one-iteration timed samples instead, so CI's
/// cheap smoke runs still produce non-empty trajectories. Bench bodies may
/// add domain counters (queue pops, bytes copied, …) via
/// [`summary::counter`]; everything is a no-op unless the env var is set.
pub mod summary {
    use std::sync::Mutex;

    static MEDIANS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());
    static COUNTERS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

    /// Whether summary emission was requested for this run.
    pub fn enabled() -> bool {
        std::env::var_os("BENCH_SUMMARY_PATH").is_some()
    }

    /// Record a named domain counter (search pops, bytes copied, …) to be
    /// included in the summary file. No-op when emission is disabled.
    pub fn counter(name: impl Into<String>, value: f64) {
        if enabled() {
            COUNTERS.lock().unwrap().push((name.into(), value));
        }
    }

    pub(crate) fn record_median(label: &str, ns: f64) {
        if enabled() {
            MEDIANS.lock().unwrap().push((label.to_string(), ns));
        }
    }

    fn bench_name() -> String {
        if let Ok(name) = std::env::var("BENCH_SUMMARY_NAME") {
            return name;
        }
        let exe = std::env::current_exe().ok();
        let stem =
            exe.as_deref().and_then(|p| p.file_stem()).and_then(|s| s.to_str()).unwrap_or("bench");
        // Cargo names bench executables `<target>-<16 hex chars>`.
        match stem.rsplit_once('-') {
            Some((base, hash))
                if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
            {
                base.to_string()
            }
            _ => stem.to_string(),
        }
    }

    fn json_object(entries: &[(String, f64)]) -> String {
        let fields: Vec<String> = entries
            .iter()
            .map(|(k, v)| {
                // Labels are harness-generated (alnum, '/', '_', '.'); escape
                // the JSON specials anyway so a stray name can't corrupt it.
                let key: String = k
                    .chars()
                    .flat_map(|c| match c {
                        '"' | '\\' => vec!['\\', c],
                        c if c.is_control() => "?".chars().collect(),
                        c => vec![c],
                    })
                    .collect();
                format!("\"{key}\": {v:.1}")
            })
            .collect();
        format!("{{{}}}", fields.join(", "))
    }

    pub(crate) fn write_if_requested() {
        let Some(path) = std::env::var_os("BENCH_SUMMARY_PATH") else {
            return;
        };
        let medians = MEDIANS.lock().unwrap();
        let counters = COUNTERS.lock().unwrap();
        let json = format!(
            "{{\"{}\": {{\"median_ns\": {}, \"counters\": {}}}}}\n",
            bench_name(),
            json_object(&medians),
            json_object(&counters)
        );
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write bench summary to {path:?}: {e}");
        }
    }

    #[cfg(test)]
    mod tests {
        use super::json_object;

        #[test]
        fn json_object_formats_and_escapes() {
            let entries = vec![
                ("repair_8k/serial/scattered".to_string(), 1234.56f64),
                ("has\"quote".to_string(), 2.0),
            ];
            let json = json_object(&entries);
            assert_eq!(json, "{\"repair_8k/serial/scattered\": 1234.6, \"has\\\"quote\": 2.0}");
            assert_eq!(json_object(&[]), "{}");
        }
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Substring filter from the command line (cargo bench passes trailing
    /// free arguments through to the bench binary).
    filter: Option<String>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// When true (cargo passes `--test` for `cargo test --benches`), run each
    /// benchmark body once and skip timing.
    test_mode: bool,
    /// How many benchmarks ran (matched the filter); used to warn on a filter
    /// that matched nothing, e.g. a stray operand of an unrecognized flag.
    ran: std::cell::Cell<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            test_mode: false,
            ran: std::cell::Cell::new(0),
        }
    }
}

impl Criterion {
    /// Parse the arguments cargo forwards to a `harness = false` bench binary.
    /// Unknown flags are ignored so the shim stays drop-in for common
    /// criterion invocations (`--bench`, `--save-baseline`, ...).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--verbose" | "--quiet" | "--noplot" | "--discard-baseline" => {}
                "--test" => self.test_mode = true,
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self = self.sample_size(n);
                    }
                }
                "--warm-up-time" => {
                    if let Some(s) = args.next().and_then(|v| v.parse().ok()) {
                        self = self.warm_up_time(Duration::from_secs_f64(s));
                    }
                }
                "--measurement-time" => {
                    if let Some(s) = args.next().and_then(|v| v.parse().ok()) {
                        self = self.measurement_time(Duration::from_secs_f64(s));
                    }
                }
                "--save-baseline" | "--baseline" | "--load-baseline" | "--color" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                free => self.filter = Some(free.to_string()),
            }
        }
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = id.label();
        let sample_size = self.sample_size;
        self.run_one(&label, sample_size, f);
        self
    }

    pub fn final_summary(&self) {
        summary::write_if_requested();
        if self.ran.get() == 0 {
            if let Some(filter) = &self.filter {
                eprintln!(
                    "warning: no benchmark matched filter '{filter}' — if that was the value \
                     of a flag this shim doesn't know, it was mistaken for a name filter"
                );
            }
        }
    }

    fn run_one<F>(&self, label: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        self.ran.set(self.ran.get() + 1);
        if self.test_mode {
            let mut b = Bencher { mode: Mode::Once, elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if summary::enabled() {
                // Cheap timed pass so `--test` smoke runs still feed the
                // perf trajectory: three one-iteration samples, median.
                let mut samples: Vec<f64> = (0..3)
                    .map(|_| {
                        b.mode = Mode::Timed { iters: 1 };
                        f(&mut b);
                        b.elapsed.as_secs_f64() / b.iters.max(1) as f64
                    })
                    .collect();
                samples.sort_by(|a, b| a.total_cmp(b));
                summary::record_median(label, samples[samples.len() / 2] * 1e9);
            }
            println!("test {label} ... ok");
            return;
        }

        // Warm-up: discover a per-sample iteration count that fills roughly
        // measurement_time / sample_size.
        let mut b = Bencher { mode: Mode::Timed { iters: 1 }, elapsed: Duration::ZERO, iters: 0 };
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut per_iter;
        loop {
            f(&mut b);
            per_iter = b.elapsed / b.iters.max(1) as u32;
            if Instant::now() >= warm_up_end {
                break;
            }
            let next = (b.iters * 2).min(1 << 30);
            b.mode = Mode::Timed { iters: next };
        }
        let budget = self.measurement_time / sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1024
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64
        };

        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            b.mode = Mode::Timed { iters: iters_per_sample };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters.max(1) as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        summary::record_median(label, median * 1e9);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{label:<40} min {:>10}  mean {:>10}  median {:>10}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(median),
            samples.len(),
            iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Benchmark identifier: `function_id/parameter`, as in the real crate.
pub struct BenchmarkId {
    function_id: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function_id: function_id.into(), parameter: Some(parameter.to_string()) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function_id: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function_id.is_empty() => p.clone(),
            Some(p) => format!("{}/{p}", self.function_id),
            None => self.function_id.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function_id: s.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function_id: s, parameter: None }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&label, sample_size, f);
        self
    }

    pub fn bench_with_input<F, I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

enum Mode {
    /// Run the body once, untimed (`cargo test --benches`).
    Once,
    /// Time `iters` iterations.
    Timed { iters: u64 },
}

/// Passed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        match self.mode {
            Mode::Once => {
                black_box(routine());
                self.iters = 1;
                self.elapsed = Duration::ZERO;
            }
            Mode::Timed { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.elapsed = start.elapsed();
                self.iters = iters;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("stl", "random").label(), "stl/random");
        assert_eq!(BenchmarkId::from_parameter(4000).label(), "4000");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }

    #[test]
    fn group_runs_functions() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.sample_size(2).bench_function("f", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
